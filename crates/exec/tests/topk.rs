//! Top-k (GShard-style) routing through the full stack: forward
//! correctness, finite-difference gradients, and capacity-passing
//! partitioned equivalence with k = 2.

use lancet_exec::{init_weights, Bindings, Executor};
use lancet_ir::{build_backward, BackwardOptions, GateKind, Graph, Op, Role, TensorId};
use lancet_tensor::{Tensor, TensorRng};

const GATE: GateKind = GateKind::TopK { k: 2 };

/// One MoE layer over `gpus` devices with top-2 routing.
fn moe_model(gpus: usize, cap: usize) -> (Graph, TensorId) {
    let experts = 2 * gpus;
    let mut g = Graph::new();
    let ids = g.input("ids", vec![2, 4]);
    let targets = g.input("targets", vec![2, 4]);
    let table = g.weight("wte", vec![7, 8]);
    let wg = g.weight("gate.w", vec![8, experts]);
    let w1 = g.weight("expert.w1", vec![2, 8, 16]);
    let w2 = g.weight("expert.w2", vec![2, 16, 8]);
    let lm = g.weight("lm", vec![8, 7]);
    let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
    let gate = g
        .emit_multi(Op::Gate { kind: GATE, experts, capacity: cap }, &[x, wg], Role::Forward)
        .unwrap();
    let buf = g
        .emit(Op::MoeDispatch { experts, capacity: cap }, &[x, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let buf = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
    let loc = g.emit(Op::ExpertsLayout { gpus }, &[buf], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
    let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
    let back = g.emit(Op::ExpertsLayoutInv { gpus }, &[h], Role::Forward).unwrap();
    let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
    let y = g
        .emit(Op::MoeGather { experts, capacity: cap, batch: 2, seq: 4 }, &[back, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let out = g.emit(Op::Add, &[x, y], Role::Forward).unwrap();
    let logits = g.emit(Op::MatMul { transpose_b: false }, &[out, lm], Role::Forward).unwrap();
    let outs = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();
    (g, outs[0])
}

fn bind(g: &Graph, devices: usize, seed: u64) -> Bindings {
    let mut b = init_weights(g, devices, seed);
    let inputs = g.inputs();
    for d in 0..devices {
        let mut rng = TensorRng::seed(seed ^ (0xA0 + d as u64));
        for &inp in &inputs {
            let shape = g.tensor(inp).shape.clone();
            let vals: Vec<f32> = (0..shape.volume()).map(|_| rng.below(7) as f32).collect();
            b.set(d, inp, Tensor::from_vec(shape, vals).unwrap());
        }
    }
    b
}

#[test]
fn topk_model_executes_and_produces_finite_loss() {
    let (mut g, loss) = moe_model(2, 8);
    build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let out = Executor::new(&g, 2).unwrap().run(bind(&g, 2, 3)).unwrap();
    let l = out.get(0, loss).unwrap().data()[0];
    assert!(l.is_finite() && l > 0.0);
}

#[test]
fn topk_gradients_match_finite_differences() {
    // Ample capacity so routing is stable under small perturbations; check
    // the expert and LM weights (routing-insensitive paths).
    let (mut g, loss) = moe_model(1, 16);
    let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let base = bind(&g, 1, 5);
    let run = |b: Bindings| -> f32 {
        let out = Executor::new(&g, 1).unwrap().run(b).unwrap();
        out.get(0, loss).unwrap().data()[0]
    };
    let out = Executor::new(&g, 1).unwrap().run(base.clone()).unwrap();
    for wname in ["expert.w1", "expert.w2", "lm", "gate.w"] {
        let w = g.weights().into_iter().find(|&w| g.tensor(w).name == wname).unwrap();
        let dw = grads[&w];
        let analytic = out.get(0, dw).unwrap().clone();
        let volume = analytic.volume();
        let eps = 1e-2f32;
        for i in (0..volume).step_by((volume / 4).max(1)).take(4) {
            let mut plus = base.clone();
            let mut t = base.get(0, w).unwrap().clone();
            t.data_mut()[i] += eps;
            plus.set(0, w, t);
            let mut minus = base.clone();
            let mut t = base.get(0, w).unwrap().clone();
            t.data_mut()[i] -= eps;
            minus.set(0, w, t);
            let numeric = (run(plus) - run(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= 5e-2 + 5e-2 * numeric.abs().max(a.abs()),
                "{wname}[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

#[test]
fn topk_partitioned_pipeline_is_bit_identical() {
    // Capacity-passing chunked gating with k = 2: partitioned pipeline
    // must match the unpartitioned layer exactly, drops included.
    let (gpus, experts, cap, batch, seq, hidden) = (2usize, 4usize, 5usize, 4usize, 3usize, 6usize);
    let build = |parts: Option<usize>| -> (Graph, TensorId, TensorId) {
        let mut g = Graph::new();
        let x = g.input("x", vec![batch, seq, hidden]);
        let wg = g.weight("gate.w", vec![hidden, experts]);
        let w1 = g.weight("expert.w1", vec![experts / gpus, hidden, 2 * hidden]);
        let w2 = g.weight("expert.w2", vec![experts / gpus, 2 * hidden, hidden]);
        let y = match parts {
            None => {
                let gate = g
                    .emit_multi(Op::Gate { kind: GATE, experts, capacity: cap }, &[x, wg], Role::Forward)
                    .unwrap();
                let buf = g
                    .emit(Op::MoeDispatch { experts, capacity: cap }, &[x, gate[0], gate[1]], Role::Forward)
                    .unwrap();
                let buf = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
                let loc = g.emit(Op::ExpertsLayout { gpus }, &[buf], Role::Forward).unwrap();
                let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
                let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
                let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
                let back = g.emit(Op::ExpertsLayoutInv { gpus }, &[h], Role::Forward).unwrap();
                let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
                g.emit(
                    Op::MoeGather { experts, capacity: cap, batch, seq },
                    &[back, gate[0], gate[1]],
                    Role::Forward,
                )
                .unwrap()
            }
            Some(parts) => {
                let mut capst = g.emit(Op::Zeros { shape: vec![experts] }, &[], Role::Forward).unwrap();
                let mut chunks = Vec::new();
                let base = batch / parts;
                let rem = batch % parts;
                let mut start = 0usize;
                for p in 0..parts {
                    let len = base + usize::from(p < rem);
                    let xc = g.emit(Op::Slice { axis: 0, start, end: start + len }, &[x], Role::Forward).unwrap();
                    start += len;
                    let gate = g
                        .emit_multi(
                            Op::GateChunk { kind: GATE, experts, capacity: cap, parts },
                            &[xc, wg, capst],
                            Role::Forward,
                        )
                        .unwrap();
                    capst = gate[2];
                    let d = g
                        .emit_multi(Op::MoeDispatchIrr { experts, capacity: cap, parts }, &[xc, gate[0], gate[1]], Role::Forward)
                        .unwrap();
                    let a2a = g.emit_multi(Op::AllToAllIrr, &[d[0], d[1]], Role::Comm).unwrap();
                    let loc = g.emit(Op::ExpertsLayout { gpus }, &[a2a[0]], Role::Forward).unwrap();
                    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
                    let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
                    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
                    let back = g.emit(Op::ExpertsLayoutInv { gpus }, &[h], Role::Forward).unwrap();
                    let ret = g.emit_multi(Op::AllToAllIrr, &[back, a2a[1]], Role::Comm).unwrap();
                    let yc = g
                        .emit(
                            Op::MoeGatherIrr { experts, capacity: cap, batch: len, seq },
                            &[ret[0], gate[0], gate[1]],
                            Role::Forward,
                        )
                        .unwrap();
                    chunks.push(yc);
                }
                g.emit(Op::Concat { axis: 0 }, &chunks, Role::Forward).unwrap()
            }
        };
        (g, x, y)
    };

    let run = |g: &Graph, x: TensorId, y: TensorId, seed: u64| -> Vec<Tensor> {
        let mut b = init_weights(g, gpus, 77);
        for d in 0..gpus {
            let mut rng = TensorRng::seed(seed ^ (d as u64 + 1));
            b.set(d, x, rng.uniform(vec![batch, seq, hidden], -1.0, 1.0));
        }
        let out = Executor::new(g, gpus).unwrap().run(b).unwrap();
        (0..gpus).map(|d| out.get(d, y).unwrap().clone()).collect()
    };

    let (g_ref, xr, yr) = build(None);
    for parts in [2usize, 4] {
        let (g_p, xp, yp) = build(Some(parts));
        for seed in [1u64, 9, 23] {
            let reference = run(&g_ref, xr, yr, seed);
            let got = run(&g_p, xp, yp, seed);
            assert_eq!(reference, got, "parts {parts} seed {seed}");
        }
    }
}

#[test]
fn expert_choice_model_executes() {
    // Expert-choice routing end-to-end: each expert picks its top-C
    // tokens; the slot-based data plane represents it with k = E.
    let experts = 4;
    let cap = 4;
    let mut g = Graph::new();
    let ids = g.input("ids", vec![2, 4]);
    let targets = g.input("targets", vec![2, 4]);
    let table = g.weight("wte", vec![7, 8]);
    let wg = g.weight("gate.w", vec![8, experts]);
    let w1 = g.weight("expert.w1", vec![2, 8, 16]);
    let w2 = g.weight("expert.w2", vec![2, 16, 8]);
    let lm = g.weight("lm", vec![8, 7]);
    let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
    let gate = g
        .emit_multi(
            Op::Gate { kind: GateKind::ExpertChoice, experts, capacity: cap },
            &[x, wg],
            Role::Forward,
        )
        .unwrap();
    let buf = g
        .emit(Op::MoeDispatch { experts, capacity: cap }, &[x, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let buf = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
    let loc = g.emit(Op::ExpertsLayout { gpus: 2 }, &[buf], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
    let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
    let back = g.emit(Op::ExpertsLayoutInv { gpus: 2 }, &[h], Role::Forward).unwrap();
    let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
    let y = g
        .emit(Op::MoeGather { experts, capacity: cap, batch: 2, seq: 4 }, &[back, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let out = g.emit(Op::Add, &[x, y], Role::Forward).unwrap();
    let logits = g.emit(Op::MatMul { transpose_b: false }, &[out, lm], Role::Forward).unwrap();
    let outs = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();
    let loss = outs[0];

    let out = Executor::new(&g, 2).unwrap().run(bind(&g, 2, 11)).unwrap();
    let l = out.get(0, loss).unwrap().data()[0];
    assert!(l.is_finite() && l > 0.0);
}
