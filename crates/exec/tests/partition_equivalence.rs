//! Numerical equivalence of the partitioned (irregular, capacity-passing)
//! MoE pipeline against the unpartitioned layer — the paper's central
//! mathematical-equivalence claim (Fig. 5c), tested bit-for-bit at the IR
//! level. These graphs are exactly what the partition pass emits.

use lancet_exec::{init_weights, Executor};
use lancet_ir::{GateKind, Graph, Op, Role, TensorId};
use lancet_tensor::{Tensor, TensorRng};

struct MoeDims {
    gpus: usize,
    experts: usize,
    cap: usize,
    batch: usize,
    seq: usize,
    hidden: usize,
}

/// Builds the unpartitioned MoE layer graph: x → gate → dispatch → a2a →
/// experts → a2a → gather → y.
fn unpartitioned(d: &MoeDims) -> (Graph, TensorId, TensorId, TensorId, TensorId, TensorId) {
    let mut g = Graph::new();
    let x = g.input("x", vec![d.batch, d.seq, d.hidden]);
    let wg = g.weight("gate.w", vec![d.hidden, d.experts]);
    let w1 = g.weight("expert.w1", vec![d.experts / d.gpus, d.hidden, 2 * d.hidden]);
    let w2 = g.weight("expert.w2", vec![d.experts / d.gpus, 2 * d.hidden, d.hidden]);
    let gate = g
        .emit_multi(
            Op::Gate { kind: GateKind::Switch, experts: d.experts, capacity: d.cap },
            &[x, wg],
            Role::Forward,
        )
        .unwrap();
    let buf = g
        .emit(Op::MoeDispatch { experts: d.experts, capacity: d.cap }, &[x, gate[0], gate[1]], Role::Forward)
        .unwrap();
    let buf = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
    let loc = g.emit(Op::ExpertsLayout { gpus: d.gpus }, &[buf], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
    let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
    let back = g.emit(Op::ExpertsLayoutInv { gpus: d.gpus }, &[h], Role::Forward).unwrap();
    let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
    let y = g
        .emit(
            Op::MoeGather { experts: d.experts, capacity: d.cap, batch: d.batch, seq: d.seq },
            &[back, gate[0], gate[1]],
            Role::Forward,
        )
        .unwrap();
    (g, x, wg, w1, w2, y)
}

/// Builds the partitioned pipeline: the batch is sliced into `parts`
/// micro-batches; gating chains capacity state (paper Fig. 5c); each chunk
/// flows through an irregular dispatch/all-to-all/expert/gather pipeline;
/// outputs are concatenated.
fn partitioned(d: &MoeDims, parts: usize) -> (Graph, TensorId, TensorId, TensorId, TensorId, TensorId) {
    let mut g = Graph::new();
    let x = g.input("x", vec![d.batch, d.seq, d.hidden]);
    let wg = g.weight("gate.w", vec![d.hidden, d.experts]);
    let w1 = g.weight("expert.w1", vec![d.experts / d.gpus, d.hidden, 2 * d.hidden]);
    let w2 = g.weight("expert.w2", vec![d.experts / d.gpus, 2 * d.hidden, d.hidden]);

    let mut cap = g.emit(Op::Zeros { shape: vec![d.experts] }, &[], Role::Forward).unwrap();
    let mut outputs = Vec::new();
    let base = d.batch / parts;
    let rem = d.batch % parts;
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        let xc = g.emit(Op::Slice { axis: 0, start, end: start + len }, &[x], Role::Forward).unwrap();
        start += len;
        let gate = g
            .emit_multi(
                Op::GateChunk { kind: GateKind::Switch, experts: d.experts, capacity: d.cap, parts },
                &[xc, wg, cap],
                Role::Forward,
            )
            .unwrap();
        cap = gate[2];
        let disp = g
            .emit_multi(
                Op::MoeDispatchIrr { experts: d.experts, capacity: d.cap, parts },
                &[xc, gate[0], gate[1]],
                Role::Forward,
            )
            .unwrap();
        let a2a = g.emit_multi(Op::AllToAllIrr, &[disp[0], disp[1]], Role::Comm).unwrap();
        let loc = g.emit(Op::ExpertsLayout { gpus: d.gpus }, &[a2a[0]], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
        let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
        let back = g.emit(Op::ExpertsLayoutInv { gpus: d.gpus }, &[h], Role::Forward).unwrap();
        let ret = g.emit_multi(Op::AllToAllIrr, &[back, a2a[1]], Role::Comm).unwrap();
        let yc = g
            .emit(
                Op::MoeGatherIrr { experts: d.experts, capacity: d.cap, batch: len, seq: d.seq },
                &[ret[0], gate[0], gate[1]],
                Role::Forward,
            )
            .unwrap();
        outputs.push(yc);
    }
    let y = g.emit(Op::Concat { axis: 0 }, &outputs, Role::Forward).unwrap();
    (g, x, wg, w1, w2, y)
}

fn run_moe(
    g: &Graph,
    x: TensorId,
    wg: TensorId,
    w1: TensorId,
    w2: TensorId,
    y: TensorId,
    d: &MoeDims,
    seed: u64,
) -> Vec<Tensor> {
    let mut b = init_weights(g, d.gpus, 1234);
    // Identical gate/expert weights across the two graphs come from
    // binding by *name*, so rebuild deterministically here.
    let mut rng = TensorRng::seed(99);
    let wg_v = rng.uniform(vec![d.hidden, d.experts], -1.0, 1.0);
    b.set_all(wg, wg_v);
    for dev in 0..d.gpus {
        let mut rng = TensorRng::seed(500 + dev as u64);
        b.set(dev, w1, rng.normal(vec![d.experts / d.gpus, d.hidden, 2 * d.hidden], 0.3));
        b.set(dev, w2, rng.normal(vec![d.experts / d.gpus, 2 * d.hidden, d.hidden], 0.3));
    }
    for dev in 0..d.gpus {
        let mut rng = TensorRng::seed(seed ^ (dev as u64 + 1));
        b.set(dev, x, rng.uniform(vec![d.batch, d.seq, d.hidden], -1.0, 1.0));
    }
    let out = Executor::new(g, d.gpus).unwrap().run(b).unwrap();
    (0..d.gpus).map(|dev| out.get(dev, y).unwrap().clone()).collect()
}

#[test]
fn partitioned_pipeline_is_bit_identical() {
    // Tight capacity forces drops, the hard case for equivalence.
    let d = MoeDims { gpus: 2, experts: 4, cap: 3, batch: 4, seq: 4, hidden: 6 };
    let (g_ref, x, wg, w1, w2, y) = unpartitioned(&d);
    let reference = run_moe(&g_ref, x, wg, w1, w2, y, &d, 7);
    for parts in [2usize, 4] {
        let (g_p, x, wg, w1, w2, y) = partitioned(&d, parts);
        let got = run_moe(&g_p, x, wg, w1, w2, y, &d, 7);
        for (dev, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(a, b, "device {dev}, parts {parts}: outputs differ");
        }
    }
}

#[test]
fn partitioned_pipeline_equivalence_across_seeds() {
    let d = MoeDims { gpus: 2, experts: 4, cap: 4, batch: 6, seq: 2, hidden: 4 };
    let (g_ref, x, wg, w1, w2, y) = unpartitioned(&d);
    let (g_p, xp, wgp, w1p, w2p, yp) = partitioned(&d, 3);
    for seed in [1u64, 2, 3, 4, 5] {
        let reference = run_moe(&g_ref, x, wg, w1, w2, y, &d, seed);
        let got = run_moe(&g_p, xp, wgp, w1p, w2p, yp, &d, seed);
        assert_eq!(reference, got, "seed {seed}");
    }
}

#[test]
fn partitioned_pipeline_four_devices() {
    let d = MoeDims { gpus: 4, experts: 8, cap: 3, batch: 4, seq: 3, hidden: 4 };
    let (g_ref, x, wg, w1, w2, y) = unpartitioned(&d);
    let reference = run_moe(&g_ref, x, wg, w1, w2, y, &d, 11);
    let (g_p, xp, wgp, w1p, w2p, yp) = partitioned(&d, 2);
    let got = run_moe(&g_p, xp, wgp, w1p, w2p, yp, &d, 11);
    assert_eq!(reference, got);
}
