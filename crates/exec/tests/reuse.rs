//! Executor reuse: the serving hot path runs one graph many times from a
//! single weight-bound `Bindings`. These tests pin the no-per-call-
//! allocation guarantee that makes that loop cheap: cloning bindings
//! shares weight buffers, so repeated runs never re-allocate or copy
//! weight storage, and results are unchanged.

use lancet_exec::{init_weights, Executor};
use lancet_ir::GateKind;
use lancet_models::{build_forward, GptMoeConfig};
use lancet_tensor::Tensor;

#[test]
fn repeated_runs_share_weight_allocations() {
    let cfg = GptMoeConfig::tiny(1, GateKind::Switch);
    let model = build_forward(&cfg).unwrap();
    let g = &model.graph;
    let mut base = init_weights(g, 1, 7);
    let ids = Tensor::from_vec(vec![cfg.batch, cfg.seq], vec![1.0; cfg.tokens()]).unwrap();
    base.set_all(model.ids, ids.clone());
    base.set_all(model.targets, ids);

    let exec = Executor::new(g, 1).unwrap();
    let out1 = exec.run(base.clone()).unwrap();
    let out2 = exec.run(base.clone()).unwrap();

    // Every weight binding in both runs is the *same allocation* as the
    // base bindings' — no weight buffer was copied or re-allocated on
    // either call.
    let weights = g.weights();
    assert!(!weights.is_empty());
    for &w in &weights {
        assert!(out1.shares_value(&base, 0, w), "run 1 re-allocated weight {:?}", g.tensor(w).name);
        assert!(out2.shares_value(&base, 0, w), "run 2 re-allocated weight {:?}", g.tensor(w).name);
        assert_eq!(
            out1.get(0, w).unwrap().data().as_ptr(),
            out2.get(0, w).unwrap().data().as_ptr(),
            "weight {:?} differs between runs",
            g.tensor(w).name
        );
    }

    // And the computed loss is bit-identical between the two runs.
    assert_eq!(out1.get(0, model.loss).unwrap().data(), out2.get(0, model.loss).unwrap().data());
}

#[test]
fn prevalidated_executor_matches_validated() {
    let cfg = GptMoeConfig::tiny(1, GateKind::Switch);
    let model = build_forward(&cfg).unwrap();
    let g = &model.graph;
    let mut base = init_weights(g, 1, 7);
    let ids = Tensor::from_vec(vec![cfg.batch, cfg.seq], vec![2.0; cfg.tokens()]).unwrap();
    base.set_all(model.ids, ids.clone());
    base.set_all(model.targets, ids);

    let checked = Executor::new(g, 1).unwrap().run(base.clone()).unwrap();
    let trusted = Executor::new_prevalidated(g, 1).run(base).unwrap();
    assert_eq!(
        checked.get(0, model.loss).unwrap().data(),
        trusted.get(0, model.loss).unwrap().data()
    );
}
