//! FSDP/ZeRO-3 equivalence: training with sharded weights (all-gather in
//! forward, reduce-scatter of gradients in backward) must compute exactly
//! the same loss as replicated training, and the same weight updates as
//! replicated training with gradient all-reduce.

use lancet_exec::{Bindings, Executor};
use lancet_ir::{build_backward, BackwardOptions, GateKind, Graph, Op, TensorId, TensorKind};
use lancet_models::{build_forward, GptMoeConfig};
use lancet_tensor::{Tensor, TensorRng};
use std::collections::HashMap;

const DEVICES: usize = 2;

fn name_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Deterministic full-weight value, keyed by the *base* name (shared
/// between the replicated tensor and its FSDP shards).
fn full_weight(name: &str, shape: &[usize]) -> Tensor {
    let mut rng = TensorRng::seed(name_seed(name));
    let fan_in = if shape.len() >= 2 { shape[shape.len() - 2] } else { 4 };
    rng.normal(shape.to_vec(), 1.0 / (fan_in as f32).sqrt())
}

fn bind(graph: &Graph) -> Bindings {
    let mut b = Bindings::new(DEVICES);
    for t in graph.tensors() {
        match t.kind {
            TensorKind::Weight => {
                if let Some(base) = t.name.strip_suffix(".shard") {
                    // Device d holds rows [d·R/G, (d+1)·R/G) of the full
                    // weight.
                    let mut full_shape = t.shape.dims().to_vec();
                    full_shape[0] *= DEVICES;
                    let full = full_weight(base, &full_shape);
                    let rows = t.shape.dim(0);
                    for d in 0..DEVICES {
                        let shard = full.slice_axis(0, d * rows, (d + 1) * rows).unwrap();
                        b.set(d, t.id, shard);
                    }
                } else if t.name.contains("expert") {
                    for d in 0..DEVICES {
                        let mut rng = TensorRng::seed(name_seed(&t.name) ^ (d as u64 + 1));
                        b.set(d, t.id, rng.normal(t.shape.clone(), 0.25));
                    }
                } else {
                    b.set_all(t.id, full_weight(&t.name, t.shape.dims()));
                }
            }
            TensorKind::Input => {
                for d in 0..DEVICES {
                    let mut rng = TensorRng::seed(name_seed(&t.name) ^ (0xF00 + d as u64));
                    let vals: Vec<f32> =
                        (0..t.shape.volume()).map(|_| rng.below(7) as f32).collect();
                    b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
                }
            }
            _ => {}
        }
    }
    b
}

/// Runs one iteration; returns (device-0 loss, updated weights keyed by
/// base name and device).
fn run(graph: &Graph) -> (f32, HashMap<(String, usize), Tensor>) {
    let out = Executor::new(graph, DEVICES).unwrap().run(bind(graph)).unwrap();
    let loss = graph
        .instrs()
        .iter()
        .find(|i| matches!(i.op, Op::CrossEntropy))
        .map(|i| i.outputs[0])
        .unwrap();
    let mut updated = HashMap::new();
    for instr in graph.instrs() {
        if matches!(instr.op, Op::SgdUpdate { .. }) {
            let name = graph.tensor(instr.inputs[0]).name.clone();
            for d in 0..DEVICES {
                updated.insert((name.clone(), d), out.get(d, instr.outputs[0]).unwrap().clone());
            }
        }
    }
    (out.get(0, loss).unwrap().data()[0], updated)
}

fn graphs() -> (Graph, Graph, TensorId) {
    let backward = BackwardOptions { sgd_lr: Some(0.1), optimizer: Default::default(), allreduce_grads: true };
    let base_cfg = GptMoeConfig::tiny(DEVICES, GateKind::Switch);

    let mut replicated = build_forward(&base_cfg).unwrap().graph;
    build_backward(&mut replicated, &backward).unwrap();

    let mut sharded = build_forward(&base_cfg.with_fsdp(true)).unwrap().graph;
    build_backward(&mut sharded, &backward).unwrap();
    let any = replicated.inputs()[0];
    (replicated, sharded, any)
}

#[test]
fn fsdp_forward_loss_is_bit_identical() {
    let (replicated, sharded, _) = graphs();
    let (l_rep, _) = run(&replicated);
    let (l_fsdp, _) = run(&sharded);
    assert_eq!(l_rep.to_bits(), l_fsdp.to_bits(), "{l_rep} vs {l_fsdp}");
}

#[test]
fn fsdp_shard_updates_match_replicated_allreduce_training() {
    let (replicated, sharded, _) = graphs();
    let (_, w_rep) = run(&replicated);
    let (_, w_fsdp) = run(&sharded);
    // Every updated shard equals the matching slice of the replicated
    // (all-reduced) update.
    let mut checked = 0;
    for ((name, d), shard) in &w_fsdp {
        let Some(base) = name.strip_suffix(".shard") else { continue };
        let full = &w_rep[&(base.to_string(), *d)];
        let rows = shard.shape()[0];
        let expect = full.slice_axis(0, d * rows, (d + 1) * rows).unwrap();
        assert!(
            shard.allclose_with(&expect, 1e-5, 1e-4),
            "shard {name} on device {d}: max diff {:?}",
            shard.max_abs_diff(&expect)
        );
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} shards checked");
}

#[test]
fn fsdp_with_prefetch_is_still_exact() {
    use lancet_core::prefetch_allgathers;
    let (_, mut sharded, _) = graphs();
    let (l_before, w_before) = run(&sharded);
    prefetch_allgathers(&mut sharded, 1).unwrap();
    let (l_after, w_after) = run(&sharded);
    // Pure reordering: results identical bit-for-bit.
    assert_eq!(l_before.to_bits(), l_after.to_bits());
    for (key, a) in &w_before {
        assert_eq!(a, &w_after[key], "{key:?}");
    }
}
