//! Cross-checks the executor kernels against the IR's shape inference:
//! for every instruction of a randomly generated-but-valid training graph,
//! the executed tensor's shape must equal the declared static shape.
//! This pins the two independent implementations of each operator's
//! semantics (analytical and numerical) to each other.

use lancet_exec::{init_weights, Bindings, Executor};
use lancet_ir::{build_backward, BackwardOptions, GateKind, Graph};
use lancet_models::{build_forward, GptMoeConfig};
use lancet_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

fn bind_inputs(g: &Graph, devices: usize, seed: u64) -> Bindings {
    let mut b = init_weights(g, devices, seed);
    for t in g.tensors() {
        if t.kind == lancet_ir::TensorKind::Input {
            for d in 0..devices {
                let mut rng = TensorRng::seed(seed ^ (d as u64) << 8 ^ u64::from(t.id.0));
                let vals: Vec<f32> = (0..t.shape.volume()).map(|_| rng.below(7) as f32).collect();
                b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
            }
        }
    }
    b
}

fn check_all_shapes(g: &Graph, devices: usize, seed: u64) -> Result<(), TestCaseError> {
    let out = Executor::new(g, devices).unwrap().run(bind_inputs(g, devices, seed)).unwrap();
    for instr in g.instrs() {
        for &t in &instr.outputs {
            let declared = g.tensor(t).shape.dims();
            for d in 0..devices {
                let got = out.get(d, t).expect("produced");
                prop_assert_eq!(
                    got.shape(),
                    declared,
                    "instr {} ({}) output {} on device {}",
                    instr.id,
                    instr.op.name(),
                    t,
                    d
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::env_cases(8))]

    /// Every executed tensor matches its declared shape, across gates,
    /// device counts, FSDP, shared experts, and the full backward pass.
    #[test]
    fn executed_shapes_match_declared(
        gate_sel in 0usize..4,
        layers in 1usize..4,
        fsdp in any::<bool>(),
        shared in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let gate = match gate_sel {
            0 => GateKind::Switch,
            1 => GateKind::TopK { k: 2 },
            2 => GateKind::BatchPrioritized,
            _ => GateKind::ExpertChoice,
        };
        let devices = 2;
        let cfg = GptMoeConfig::tiny(devices, gate)
            .with_layers(layers)
            .with_fsdp(fsdp)
            .with_shared_expert(shared);
        let mut g = build_forward(&cfg).unwrap().graph;
        build_backward(&mut g, &BackwardOptions { sgd_lr: Some(0.1), optimizer: Default::default(), allreduce_grads: true })
            .unwrap();
        check_all_shapes(&g, devices, seed)?;
    }

    /// Same conformance through the partitioned (irregular) pipeline.
    #[test]
    fn partitioned_shapes_match_declared(parts in 2usize..3, seed in any::<u64>()) {
        use lancet_core::{apply_partitions, infer_axes, PartitionSpec};
        let devices = 2;
        let cfg = GptMoeConfig::tiny(devices, GateKind::Switch);
        let fwd = build_forward(&cfg).unwrap().graph;
        let start = fwd
            .instrs()
            .iter()
            .position(|i| matches!(i.op, lancet_ir::Op::Gate { .. }))
            .unwrap();
        let end = fwd
            .instrs()
            .iter()
            .position(|i| matches!(i.op, lancet_ir::Op::MoeGather { .. }))
            .unwrap()
            + 1;
        let axes = infer_axes(&fwd, start..end).unwrap();
        let mut g =
            apply_partitions(&fwd, &[PartitionSpec { range: start..end, parts, axes }]).unwrap();
        build_backward(&mut g, &BackwardOptions::default()).unwrap();
        check_all_shapes(&g, devices, seed)?;
    }
}
