//! Finite-difference validation of the IR autodiff through the executor.
//!
//! These tests are the foundation of every later "the passes preserve
//! semantics" claim: they establish that executing the autodiff-generated
//! backward graph computes the true gradient of the executed forward graph.

use lancet_exec::{init_weights, Bindings, Executor};
use lancet_ir::{build_backward, BackwardOptions, GateKind, Graph, Op, Role, TensorId};
use lancet_tensor::Tensor;

/// Builds a tiny dense transformer-ish model: embedding → attention →
/// residual → FFN → loss.
fn dense_model() -> (Graph, TensorId, TensorId) {
    let mut g = Graph::new();
    let ids = g.input("ids", vec![2, 4]);
    let targets = g.input("targets", vec![2, 4]);
    let table = g.weight("wte", vec![7, 8]);
    let wq = g.weight("wq", vec![8, 8]);
    let wk = g.weight("wk", vec![8, 8]);
    let wv = g.weight("wv", vec![8, 8]);
    let wo = g.weight("wo", vec![8, 8]);
    let w1 = g.weight("w1", vec![8, 16]);
    let b1 = g.weight("b1", vec![16]);
    let w2 = g.weight("w2", vec![16, 8]);
    let gamma = g.weight("ln.g", vec![8]);
    let beta = g.weight("ln.b", vec![8]);
    let lm = g.weight("lm", vec![8, 7]);

    let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
    let xn = g.emit(Op::LayerNorm { eps: 1e-5 }, &[x, gamma, beta], Role::Forward).unwrap();
    let q = g.emit(Op::MatMul { transpose_b: false }, &[xn, wq], Role::Forward).unwrap();
    let k = g.emit(Op::MatMul { transpose_b: false }, &[xn, wk], Role::Forward).unwrap();
    let v = g.emit(Op::MatMul { transpose_b: false }, &[xn, wv], Role::Forward).unwrap();
    let scores = g.emit(Op::AttnScores { heads: 2, causal: true }, &[q, k], Role::Forward).unwrap();
    let probs = g.emit(Op::Softmax, &[scores], Role::Forward).unwrap();
    let ctx = g.emit(Op::AttnContext { heads: 2 }, &[probs, v], Role::Forward).unwrap();
    let proj = g.emit(Op::MatMul { transpose_b: false }, &[ctx, wo], Role::Forward).unwrap();
    let res = g.emit(Op::Add, &[x, proj], Role::Forward).unwrap();
    let h = g.emit(Op::MatMul { transpose_b: false }, &[res, w1], Role::Forward).unwrap();
    let h = g.emit(Op::BiasAdd, &[h, b1], Role::Forward).unwrap();
    let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
    let h = g.emit(Op::MatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
    let out = g.emit(Op::Add, &[res, h], Role::Forward).unwrap();
    let logits = g.emit(Op::MatMul { transpose_b: false }, &[out, lm], Role::Forward).unwrap();
    let loss_outs = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();
    (g, ids, loss_outs[0])
}

fn bind_tokens(g: &Graph, b: &mut Bindings, ids: &[f32], targets: &[f32]) {
    let inputs = g.inputs();
    b.set_all(inputs[0], Tensor::from_vec(vec![2, 4], ids.to_vec()).unwrap());
    b.set_all(inputs[1], Tensor::from_vec(vec![2, 4], targets.to_vec()).unwrap());
}

fn loss_of(g: &Graph, bindings: Bindings, loss: TensorId) -> f32 {
    let out = Executor::new(g, bindings.devices()).unwrap().run(bindings).unwrap();
    out.get(0, loss).unwrap().data()[0]
}

/// Checks dL/dw numerically for a handful of elements of each weight.
fn check_weight_grads(
    g: &Graph,
    base: &Bindings,
    loss: TensorId,
    grads: &std::collections::HashMap<TensorId, TensorId>,
    tol: f32,
    skip: &[&str],
) {
    let out = Executor::new(g, base.devices()).unwrap().run(base.clone()).unwrap();
    for (&w, &dw) in grads {
        let name = &g.tensor(w).name;
        if skip.iter().any(|s| name.contains(s)) {
            continue;
        }
        let analytic = out.get(0, dw).unwrap().clone();
        let volume = analytic.volume();
        // Probe a few indices spread through the tensor.
        let probes: Vec<usize> = (0..volume).step_by((volume / 5).max(1)).take(5).collect();
        for &i in &probes {
            let eps = 1e-2f32;
            let mut plus = base.clone();
            let mut minus = base.clone();
            for d in 0..base.devices() {
                let mut t = base.get(d, w).unwrap().clone();
                t.data_mut()[i] += eps;
                plus.set(d, w, t);
                let mut t = base.get(d, w).unwrap().clone();
                t.data_mut()[i] -= eps;
                minus.set(d, w, t);
            }
            let lp = loss_of(g, plus, loss);
            let lm = loss_of(g, minus, loss);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol + tol * numeric.abs().max(a.abs()),
                "weight `{name}`[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

#[test]
fn dense_model_gradients_match_finite_differences() {
    let (mut g, _ids, loss) = dense_model();
    let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let mut b = init_weights(&g, 1, 11);
    bind_tokens(&g, &mut b, &[0., 1., 2., 3., 4., 5., 6., 0.], &[1., 2., 3., 4., 5., 6., 0., 1.]);
    check_weight_grads(&g, &b, loss, &grads, 2e-2, &[]);
}

/// Builds a single-MoE-layer model distributed over `gpus` devices.
fn moe_model(gpus: usize, gate: GateKind) -> (Graph, TensorId) {
    let experts = 2 * gpus;
    let cap = 6;
    let mut g = Graph::new();
    let ids = g.input("ids", vec![2, 4]);
    let targets = g.input("targets", vec![2, 4]);
    let table = g.weight("wte", vec![7, 8]);
    let wg = g.weight("gate.w", vec![8, experts]);
    let w1 = g.weight("expert.w1", vec![2, 8, 16]);
    let w2 = g.weight("expert.w2", vec![2, 16, 8]);
    let lm = g.weight("lm", vec![8, 7]);

    let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
    let gate_outs = g
        .emit_multi(Op::Gate { kind: gate, experts, capacity: cap }, &[x, wg], Role::Forward)
        .unwrap();
    let buf = g
        .emit(Op::MoeDispatch { experts, capacity: cap }, &[x, gate_outs[0], gate_outs[1]], Role::Forward)
        .unwrap();
    let buf = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
    let loc = g.emit(Op::ExpertsLayout { gpus }, &[buf], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
    let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
    let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
    let back = g.emit(Op::ExpertsLayoutInv { gpus }, &[h], Role::Forward).unwrap();
    let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
    let y = g
        .emit(
            Op::MoeGather { experts, capacity: cap, batch: 2, seq: 4 },
            &[back, gate_outs[0], gate_outs[1]],
            Role::Forward,
        )
        .unwrap();
    let out = g.emit(Op::Add, &[x, y], Role::Forward).unwrap();
    let logits = g.emit(Op::MatMul { transpose_b: false }, &[out, lm], Role::Forward).unwrap();
    let loss_outs = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();
    (g, loss_outs[0])
}

#[test]
fn moe_model_gradients_match_finite_differences() {
    let (mut g, loss) = moe_model(2, GateKind::Switch);
    let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let mut b = init_weights(&g, 2, 5);
    let inputs = g.inputs();
    // Different tokens per device (data parallelism).
    b.set(0, inputs[0], Tensor::from_vec(vec![2, 4], vec![0., 1., 2., 3., 4., 5., 6., 0.]).unwrap());
    b.set(1, inputs[0], Tensor::from_vec(vec![2, 4], vec![3., 2., 1., 0., 6., 5., 4., 3.]).unwrap());
    b.set(0, inputs[1], Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., 5., 6., 0., 1.]).unwrap());
    b.set(1, inputs[1], Tensor::from_vec(vec![2, 4], vec![4., 3., 2., 1., 0., 6., 5., 4.]).unwrap());

    // Loss on device 0 depends on device-0 tokens, all expert weights it
    // touches, and (through all-to-all) other devices' tokens into its
    // experts. We check the replicated weights downstream of routing
    // against the device-0 loss. Skipped: expert weights (cross-device
    // coupling, validated by `moe_cross_device_expert_gradients`), and
    // gate/embedding weights (perturbing them can flip the discrete
    // routing decision, making finite differences invalid).
    check_weight_grads(&g, &b, loss, &grads, 5e-2, &["expert", "gate", "wte"]);
}

#[test]
fn moe_cross_device_expert_gradients() {
    // Expert weights receive gradient contributions from *all* devices'
    // tokens (through the all-to-all). Perturb expert.w1 on device 1 only
    // and compare its analytic gradient against the total (summed) loss.
    let (mut g, loss) = moe_model(2, GateKind::Switch);
    let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let base = {
        let mut b = init_weights(&g, 2, 5);
        let inputs = g.inputs();
        b.set(0, inputs[0], Tensor::from_vec(vec![2, 4], vec![0., 1., 2., 3., 4., 5., 6., 0.]).unwrap());
        b.set(1, inputs[0], Tensor::from_vec(vec![2, 4], vec![3., 2., 1., 0., 6., 5., 4., 3.]).unwrap());
        b.set(0, inputs[1], Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., 5., 6., 0., 1.]).unwrap());
        b.set(1, inputs[1], Tensor::from_vec(vec![2, 4], vec![4., 3., 2., 1., 0., 6., 5., 4.]).unwrap());
        b
    };
    let w1 = g
        .weights()
        .into_iter()
        .find(|&w| g.tensor(w).name == "expert.w1")
        .unwrap();
    let dw1 = grads[&w1];
    let total_loss = |b: Bindings| -> f32 {
        let out = Executor::new(&g, 2).unwrap().run(b).unwrap();
        out.get(0, loss).unwrap().data()[0] + out.get(1, loss).unwrap().data()[0]
    };
    let out = Executor::new(&g, 2).unwrap().run(base.clone()).unwrap();
    let analytic = out.get(1, dw1).unwrap().clone();
    let volume = analytic.volume();
    let eps = 1e-2f32;
    for i in (0..volume).step_by((volume / 5).max(1)).take(5) {
        let mut plus = base.clone();
        let mut t = base.get(1, w1).unwrap().clone();
        t.data_mut()[i] += eps;
        plus.set(1, w1, t);
        let mut minus = base.clone();
        let mut t = base.get(1, w1).unwrap().clone();
        t.data_mut()[i] -= eps;
        minus.set(1, w1, t);
        let numeric = (total_loss(plus) - total_loss(minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        assert!(
            (a - numeric).abs() <= 5e-2 + 5e-2 * numeric.abs().max(a.abs()),
            "expert.w1[{i}]: analytic {a} vs numeric {numeric}"
        );
    }
}

#[test]
fn moe_expert_weight_gradients_single_device() {
    // On one device the all-to-all is the identity, so finite differences
    // validate expert weights too — and, unlike the multi-device test, the
    // gate and embedding weights as well. The one hazard is the router's
    // discrete top-1 decision: finite differences are invalid for any
    // weight upstream of the gate when a token's routing probability sits
    // near the 0.5 two-expert boundary, because an ±eps probe flips the
    // argmax and measures the resulting jump in the loss instead of the
    // gradient. (The historical failure of this test was exactly that: at
    // seed 3, token id 5 routed with probability 0.5008, so probing its
    // embedding row reported `wte` "gradients" of ~0.89 against an
    // analytic 0.02 — the analytic values were correct.) Seed 36 keeps
    // every token ≥ 0.05 away from the boundary, asserted below, which an
    // eps = 1e-2 probe cannot cross.
    let (mut g, loss) = moe_model(1, GateKind::Switch);
    let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let mut b = init_weights(&g, 1, 36);
    bind_tokens(&g, &mut b, &[0., 1., 2., 3., 4., 5., 6., 0.], &[1., 2., 3., 4., 5., 6., 0., 1.]);

    // Guard: no token may route near the decision boundary, otherwise the
    // finite-difference probes below are meaningless. The gate's scale
    // output is the chosen expert's softmax probability (two experts, so
    // 0.5 is the boundary).
    let out = Executor::new(&g, 1).unwrap().run(b.clone()).unwrap();
    let scale = g.tensors().iter().find(|t| t.name == "gate.1.1").expect("gate scale tensor").id;
    let margin = out
        .get(0, scale)
        .unwrap()
        .data()
        .iter()
        .map(|&s| (s - 0.5f32).abs())
        .fold(f32::INFINITY, f32::min);
    assert!(margin >= 0.05, "a token routes too close to the boundary (margin {margin}); pick a different seed");

    check_weight_grads(&g, &b, loss, &grads, 5e-2, &[]);
}

#[test]
fn bpr_gate_executes_and_differentiates() {
    let (mut g, loss) = moe_model(2, GateKind::BatchPrioritized);
    let _ = build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let mut b = init_weights(&g, 2, 9);
    let inputs = g.inputs();
    b.set_all(inputs[0], Tensor::from_vec(vec![2, 4], vec![0., 1., 2., 3., 4., 5., 6., 0.]).unwrap());
    b.set_all(inputs[1], Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., 5., 6., 0., 1.]).unwrap());
    let out = Executor::new(&g, 2).unwrap().run(b).unwrap();
    let l = out.get(0, loss).unwrap().data()[0];
    assert!(l.is_finite() && l > 0.0);
}
