//! Executor error paths: missing bindings, shape mismatches, and
//! topology violations must fail loudly with actionable messages.

use lancet_exec::{Bindings, ExecError, Executor};
use lancet_ir::{Graph, Op, Role};
use lancet_tensor::Tensor;

#[test]
fn unbound_input_is_reported_by_name() {
    let mut g = Graph::new();
    let x = g.input("tokens", vec![2, 2]);
    let _ = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
    let err = Executor::new(&g, 1).unwrap().run(Bindings::new(1)).unwrap_err();
    match err {
        ExecError::Unbound { name } => assert_eq!(name, "tokens"),
        other => panic!("expected Unbound, got {other}"),
    }
}

#[test]
fn wrong_shape_binding_is_rejected() {
    let mut g = Graph::new();
    let x = g.input("x", vec![2, 2]);
    let _ = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
    let mut b = Bindings::new(1);
    b.set_all(x, Tensor::zeros(vec![3, 3]));
    let err = Executor::new(&g, 1).unwrap().run(b).unwrap_err();
    match err {
        ExecError::ShapeMismatch { name, declared, bound } => {
            assert_eq!(name, "x");
            assert_eq!(declared, vec![2, 2]);
            assert_eq!(bound, vec![3, 3]);
        }
        other => panic!("expected ShapeMismatch, got {other}"),
    }
}

#[test]
fn invalid_graph_rejected_at_construction() {
    let mut g = Graph::new();
    let x = g.input("x", vec![2, 2]);
    let a = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
    let b = g.emit(Op::Gelu, &[a], Role::Forward).unwrap();
    let _ = b;
    // A failed reorder must leave the graph intact (and executable).
    let ids: Vec<_> = g.instrs().iter().map(|i| i.id).collect();
    assert!(g.reorder(vec![ids[1], ids[0]]).is_err());
    assert!(g.validate().is_ok(), "failed reorder corrupted the graph");
    assert!(Executor::new(&g, 1).is_ok());
}

#[test]
fn allgather_wrong_device_count_fails() {
    let mut g = Graph::new();
    let shard = g.weight("w.shard", vec![2, 4]);
    let _full = g.emit(Op::AllGather { gpus: 4 }, &[shard], Role::Comm).unwrap();
    let mut b = Bindings::new(2); // only two devices participate
    b.set_all(shard, Tensor::zeros(vec![2, 4]));
    let err = Executor::new(&g, 2).unwrap().run(b).unwrap_err();
    assert!(matches!(err, ExecError::Unsupported { .. }), "{err}");
}

#[test]
fn alltoall_topology_mismatch_reported() {
    // 3 experts on 2 devices does not divide → data-plane error wrapped
    // with the instruction.
    let mut g = Graph::new();
    let x = g.input("buf", vec![3, 2, 2]);
    let _ = g.emit(Op::AllToAll, &[x], Role::Comm).unwrap();
    let mut b = Bindings::new(2);
    b.set_all(x, Tensor::zeros(vec![3, 2, 2]));
    let err = Executor::new(&g, 2).unwrap().run(b).unwrap_err();
    assert!(matches!(err, ExecError::Moe { .. }), "{err}");
    // Error display names the failing op.
    assert!(err.to_string().contains("all_to_all"), "{err}");
}

#[test]
fn kernel_error_carries_instruction_context() {
    // BiasAdd with mismatched bias length fails inside the kernel.
    let mut g = Graph::new();
    let x = g.input("x", vec![2, 4]);
    let b_t = g.input("b", vec![4]);
    let _ = g.emit(Op::BiasAdd, &[x, b_t], Role::Forward).unwrap();
    let mut bind = Bindings::new(1);
    bind.set(0, x, Tensor::zeros(vec![2, 4]));
    // Deliberately bind a wrong-size bias by bypassing the declared-shape
    // check… which is impossible through the public API — the executor
    // validates shapes up front. Verify that protection instead.
    bind.set(0, b_t, Tensor::zeros(vec![5]));
    let err = Executor::new(&g, 1).unwrap().run(bind).unwrap_err();
    assert!(matches!(err, ExecError::ShapeMismatch { .. }));
}

#[test]
fn error_display_is_meaningful() {
    let e = ExecError::Unbound { name: "wte".into() };
    assert_eq!(e.to_string(), "tensor `wte` was not bound");
    let e = ExecError::Unsupported { instr: lancet_ir::InstrId(3), detail: "why".into() };
    assert!(e.to_string().contains("@3"));
}
