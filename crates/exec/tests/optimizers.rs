//! Optimizer-update semantics: SGD with momentum (the paper's training
//! setup) and Adam, checked against hand-computed math and exercised on a
//! multi-step training loop.

use lancet_exec::{init_weights, Bindings, Executor};
use lancet_ir::{
    build_backward, BackwardOptions, GateKind, Graph, Op, Optimizer, Role, TensorId, TensorKind,
};
use lancet_models::{build_forward, GptMoeConfig};
use lancet_tensor::{Tensor, TensorRng};

#[test]
fn sgd_momentum_matches_hand_math() {
    let mut g = Graph::new();
    let w = g.weight("w", vec![2]);
    let dw = g.input("dw", vec![2]);
    let vel = g.weight("opt.vel.w", vec![2]);
    let outs = g
        .emit_multi(Op::SgdMomentumUpdate { lr: 0.1, momentum: 0.9 }, &[w, dw, vel], Role::Optimizer)
        .unwrap();
    let mut b = Bindings::new(1);
    b.set_all(w, Tensor::from_vec(vec![2], vec![1.0, -2.0]).unwrap());
    b.set_all(dw, Tensor::from_vec(vec![2], vec![0.5, 0.25]).unwrap());
    b.set_all(vel, Tensor::from_vec(vec![2], vec![0.2, -0.4]).unwrap());
    let out = Executor::new(&g, 1).unwrap().run(b).unwrap();
    // vel' = 0.9·vel + dw ; w' = w − 0.1·vel'
    let vel_next = out.get(0, outs[1]).unwrap();
    assert!(vel_next.allclose(&Tensor::from_vec(vec![2], vec![0.68, -0.11]).unwrap()));
    let w_next = out.get(0, outs[0]).unwrap();
    assert!(w_next.allclose(&Tensor::from_vec(vec![2], vec![1.0 - 0.068, -2.0 + 0.011]).unwrap()));
}

#[test]
fn adam_matches_hand_math() {
    let (lr, b1, b2, eps) = (0.01f32, 0.9f32, 0.999f32, 1e-8f32);
    let mut g = Graph::new();
    let w = g.weight("w", vec![1]);
    let dw = g.input("dw", vec![1]);
    let m = g.weight("opt.m.w", vec![1]);
    let v = g.weight("opt.v.w", vec![1]);
    let outs = g
        .emit_multi(Op::AdamUpdate { lr, beta1: b1, beta2: b2, eps }, &[w, dw, m, v], Role::Optimizer)
        .unwrap();
    let mut b = Bindings::new(1);
    b.set_all(w, Tensor::scalar(2.0).reshape(vec![1]).unwrap());
    b.set_all(dw, Tensor::scalar(0.5).reshape(vec![1]).unwrap());
    b.set_all(m, Tensor::scalar(0.1).reshape(vec![1]).unwrap());
    b.set_all(v, Tensor::scalar(0.04).reshape(vec![1]).unwrap());
    let out = Executor::new(&g, 1).unwrap().run(b).unwrap();
    let m_next = b1 * 0.1 + (1.0 - b1) * 0.5;
    let v_next = b2 * 0.04 + (1.0 - b2) * 0.25;
    let w_next = 2.0 - lr * m_next / (v_next.sqrt() + eps);
    assert!((out.get(0, outs[1]).unwrap().data()[0] - m_next).abs() < 1e-7);
    assert!((out.get(0, outs[2]).unwrap().data()[0] - v_next).abs() < 1e-7);
    assert!((out.get(0, outs[0]).unwrap().data()[0] - w_next).abs() < 1e-6);
}

/// Trains the tiny model for a few steps with a given optimizer, threading
/// both weights and optimizer state between iterations.
fn train(optimizer: Optimizer, steps: usize) -> Vec<f32> {
    let devices = 2;
    let cfg = GptMoeConfig::tiny(devices, GateKind::Switch);
    let mut g = build_forward(&cfg).unwrap().graph;
    build_backward(&mut g, &BackwardOptions { sgd_lr: None, optimizer, allreduce_grads: false })
        .unwrap();

    // State: map weight name → per-device value, fed back each step.
    let mut state: std::collections::HashMap<(TensorId, usize), Tensor> = Default::default();
    let seed_bindings = init_weights(&g, devices, 77);
    for t in g.tensors() {
        if t.kind == TensorKind::Weight {
            for d in 0..devices {
                state.insert((t.id, d), seed_bindings.get(d, t.id).unwrap().clone());
            }
        }
    }
    let loss_tensor = g
        .instrs()
        .iter()
        .find(|i| matches!(i.op, Op::CrossEntropy))
        .map(|i| i.outputs[0])
        .unwrap();

    let mut losses = Vec::new();
    for _ in 0..steps {
        let mut b = Bindings::new(devices);
        for t in g.tensors() {
            match t.kind {
                TensorKind::Weight => {
                    for d in 0..devices {
                        b.set(d, t.id, state[&(t.id, d)].clone());
                    }
                }
                TensorKind::Input => {
                    for d in 0..devices {
                        let mut rng = TensorRng::seed(0xDA7A ^ d as u64 ^ u64::from(t.id.0));
                        let vals: Vec<f32> =
                            (0..t.shape.volume()).map(|_| rng.below(7) as f32).collect();
                        b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
                    }
                }
                _ => {}
            }
        }
        let out = Executor::new(&g, devices).unwrap().run(b).unwrap();
        losses.push(out.get(0, loss_tensor).unwrap().data()[0]);
        // Thread updated weights and optimizer state back.
        for instr in g.instrs() {
            match instr.op {
                Op::SgdUpdate { .. } => {
                    for d in 0..devices {
                        state.insert((instr.inputs[0], d), out.get(d, instr.outputs[0]).unwrap().clone());
                    }
                }
                Op::SgdMomentumUpdate { .. } => {
                    for d in 0..devices {
                        state.insert((instr.inputs[0], d), out.get(d, instr.outputs[0]).unwrap().clone());
                        state.insert((instr.inputs[2], d), out.get(d, instr.outputs[1]).unwrap().clone());
                    }
                }
                Op::AdamUpdate { .. } => {
                    for d in 0..devices {
                        state.insert((instr.inputs[0], d), out.get(d, instr.outputs[0]).unwrap().clone());
                        state.insert((instr.inputs[2], d), out.get(d, instr.outputs[1]).unwrap().clone());
                        state.insert((instr.inputs[3], d), out.get(d, instr.outputs[2]).unwrap().clone());
                    }
                }
                _ => {}
            }
        }
    }
    losses
}

#[test]
fn momentum_training_converges() {
    let losses = train(Optimizer::SgdMomentum { lr: 0.1, momentum: 0.9 }, 6);
    assert!(
        losses[5] < losses[0],
        "momentum training did not reduce loss: {losses:?}"
    );
}

#[test]
fn adam_training_converges() {
    let losses = train(Optimizer::Adam { lr: 0.01, beta1: 0.9, beta2: 0.999, eps: 1e-8 }, 6);
    assert!(losses[5] < losses[0], "adam training did not reduce loss: {losses:?}");
}

#[test]
fn optimizer_states_declared_per_weight() {
    let cfg = GptMoeConfig::tiny(2, GateKind::Switch);
    let mut g = build_forward(&cfg).unwrap().graph;
    let opts = BackwardOptions {
        sgd_lr: None,
        optimizer: Optimizer::Adam { lr: 0.01, beta1: 0.9, beta2: 0.999, eps: 1e-8 },
        allreduce_grads: false,
    };
    build_backward(&mut g, &opts).unwrap();
    let n_model_weights = g
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Weight && !t.name.starts_with("opt."))
        .count();
    let n_m = g.tensors().iter().filter(|t| t.name.starts_with("opt.m.")).count();
    let n_v = g.tensors().iter().filter(|t| t.name.starts_with("opt.v.")).count();
    assert_eq!(n_m, n_model_weights);
    assert_eq!(n_v, n_model_weights);
}
