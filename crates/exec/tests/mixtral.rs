//! Mixtral-style architecture (every-layer MoE, top-2, RMSNorm, SwiGLU)
//! through the full numerical stack: execution, finite-difference
//! gradients, and Lancet-pass semantics preservation.

use lancet_exec::{init_weights, Bindings, Executor};
use lancet_ir::{build_backward, BackwardOptions, Graph, Op, TensorKind};
use lancet_models::{build_forward, GptMoeConfig};
use lancet_tensor::{Tensor, TensorRng};

const DEVICES: usize = 2;

fn bind(g: &Graph, seed: u64) -> Bindings {
    let mut b = init_weights(g, DEVICES, seed);
    for t in g.tensors() {
        if t.kind == TensorKind::Input {
            for d in 0..DEVICES {
                let mut rng = TensorRng::seed(seed ^ (0xB0 + d as u64) ^ u64::from(t.id.0));
                let vals: Vec<f32> = (0..t.shape.volume()).map(|_| rng.below(7) as f32).collect();
                b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
            }
        }
    }
    b
}

fn loss_of(g: &Graph, b: Bindings) -> f32 {
    let out = Executor::new(g, DEVICES).unwrap().run(b).unwrap();
    let loss = g
        .instrs()
        .iter()
        .find(|i| matches!(i.op, Op::CrossEntropy))
        .map(|i| i.outputs[0])
        .unwrap();
    out.get(0, loss).unwrap().data()[0]
}

#[test]
fn mixtral_executes_with_finite_loss() {
    let cfg = GptMoeConfig::mixtral_tiny(DEVICES);
    let mut g = build_forward(&cfg).unwrap().graph;
    build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let l = loss_of(&g, bind(&g, 3));
    assert!(l.is_finite() && l > 0.0, "loss {l}");
}

#[test]
fn mixtral_swiglu_expert_gradients_match_finite_differences() {
    // Single device so finite differences see the whole data path.
    let mut cfg = GptMoeConfig::mixtral_tiny(1);
    cfg.layers = 1;
    let mut g = build_forward(&cfg).unwrap().graph;
    let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
    let base = {
        let mut b = init_weights(&g, 1, 7);
        for t in g.tensors() {
            if t.kind == TensorKind::Input {
                let vals: Vec<f32> = (0..t.shape.volume()).map(|i| ((i * 5 + 1) % 7) as f32).collect();
                b.set(0, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
            }
        }
        b
    };
    let run = |b: Bindings| -> f32 {
        let out = Executor::new(&g, 1).unwrap().run(b).unwrap();
        let loss = g
            .instrs()
            .iter()
            .find(|i| matches!(i.op, Op::CrossEntropy))
            .map(|i| i.outputs[0])
            .unwrap();
        out.get(0, loss).unwrap().data()[0]
    };
    let out = Executor::new(&g, 1).unwrap().run(base.clone()).unwrap();
    // Check the SwiGLU expert weights and an RMS gamma.
    for wname in ["h0.moe.expert.w1", "h0.moe.expert.w3", "h0.moe.expert.w2", "h0.ln1.g"] {
        let w = g.weights().into_iter().find(|&w| g.tensor(w).name == wname).unwrap();
        let dw = grads[&w];
        let analytic = out.get(0, dw).unwrap().clone();
        let volume = analytic.volume();
        let eps = 1e-2f32;
        for i in (0..volume).step_by((volume / 4).max(1)).take(4) {
            let mut plus = base.clone();
            let mut t = base.get(0, w).unwrap().clone();
            t.data_mut()[i] += eps;
            plus.set(0, w, t);
            let mut minus = base.clone();
            let mut t = base.get(0, w).unwrap().clone();
            t.data_mut()[i] -= eps;
            minus.set(0, w, t);
            let numeric = (run(plus) - run(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= 5e-2 + 5e-2 * numeric.abs().max(a.abs()),
                "{wname}[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

#[test]
fn mixtral_partitioned_pipeline_preserves_loss() {
    use lancet_core::{apply_partitions, infer_axes, PartitionSpec};
    let cfg = GptMoeConfig::mixtral_tiny(DEVICES);
    let fwd = build_forward(&cfg).unwrap().graph;
    // Partition the first MoE pipeline (gate … gather).
    let start = fwd.instrs().iter().position(|i| matches!(i.op, Op::Gate { .. })).unwrap();
    let end = fwd.instrs().iter().position(|i| matches!(i.op, Op::MoeGather { .. })).unwrap() + 1;
    let axes = infer_axes(&fwd, start..end).expect("SwiGLU MoE pipeline partitionable");
    let mut part = apply_partitions(&fwd, &[PartitionSpec { range: start..end, parts: 2, axes }]).unwrap();
    let mut base = fwd;
    build_backward(&mut base, &BackwardOptions::default()).unwrap();
    build_backward(&mut part, &BackwardOptions::default()).unwrap();

    // Name-keyed deterministic binding so both graphs see identical data.
    let name_seed = |name: &str| -> u64 {
        name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        })
    };
    let bind_named = |g: &Graph| -> Bindings {
        let mut b = Bindings::new(DEVICES);
        for t in g.tensors() {
            match t.kind {
                TensorKind::Weight => {
                    if t.name.contains("expert") {
                        for d in 0..DEVICES {
                            let mut rng = TensorRng::seed(name_seed(&t.name) ^ (d as u64 + 1));
                            b.set(d, t.id, rng.normal(t.shape.clone(), 0.25));
                        }
                    } else {
                        let mut rng = TensorRng::seed(name_seed(&t.name));
                        b.set_all(t.id, rng.normal(t.shape.clone(), 0.25));
                    }
                }
                TensorKind::Input => {
                    for d in 0..DEVICES {
                        let vals: Vec<f32> =
                            (0..t.shape.volume()).map(|i| ((i * 3 + d) % 7) as f32).collect();
                        b.set(d, t.id, Tensor::from_vec(t.shape.clone(), vals).unwrap());
                    }
                }
                _ => {}
            }
        }
        b
    };
    let l_base = loss_of(&base, bind_named(&base));
    let l_part = loss_of(&part, bind_named(&part));
    assert_eq!(l_base.to_bits(), l_part.to_bits(), "{l_base} vs {l_part}");
}
