//! Regression tests for the position-offset (KV-cached) attention path.
//!
//! The attention kernels historically assumed full-sequence inputs and
//! recomputed every query's position from the shared shape. The decode
//! engine feeds them *rectangular* shapes — `Sq` trailing queries against
//! an `Sk`-position KV cache — so the position offset `Sk − Sq` must be
//! explicit. These tests pin the contract the whole `lancet-decode`
//! bit-identity story rests on: attending the last position against the
//! cached prefix reproduces the full-sequence forward's row **bit for
//! bit**.

use lancet_exec::{eval_op, Bindings, Executor};
use lancet_ir::{Graph, Op, Role};
use lancet_tensor::Tensor;

/// Deterministic pseudo-random fill in [-1, 1).
fn filled(shape: Vec<usize>, seed: u64) -> Tensor {
    let volume: usize = shape.iter().product();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let data = (0..volume)
        .map(|_| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect();
    Tensor::from_vec(shape, data).expect("volume matches")
}

fn attention(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize) -> Tensor {
    let scores = eval_op(&Op::AttnScores { heads, causal: true }, &[q, k]).unwrap().remove(0);
    let probs = eval_op(&Op::Softmax, &[&scores]).unwrap().remove(0);
    eval_op(&Op::AttnContext { heads }, &[&probs, v]).unwrap().remove(0)
}

#[test]
fn unit_query_against_kv_cache_matches_full_sequence_bitwise() {
    let (b, s, h, heads) = (2, 6, 8, 2);
    let q = filled(vec![b, s, h], 1);
    let k = filled(vec![b, s, h], 2);
    let v = filled(vec![b, s, h], 3);
    let full = attention(&q, &k, &v, heads);

    for i in 0..s {
        // Query = position i alone; KV cache = positions 0..=i. Under the
        // causal mask this is exactly what the full pass computed for row
        // i, so the context row must match bit for bit.
        let qi = q.slice_axis(1, i, i + 1).unwrap();
        let ki = k.slice_axis(1, 0, i + 1).unwrap();
        let vi = v.slice_axis(1, 0, i + 1).unwrap();
        let ctx = attention(&qi, &ki, &vi, heads);
        assert_eq!(ctx.shape(), &[b, 1, h]);
        for bi in 0..b {
            for d in 0..h {
                let cached = ctx.data()[bi * h + d];
                let reference = full.data()[(bi * s + i) * h + d];
                assert_eq!(
                    cached.to_bits(),
                    reference.to_bits(),
                    "position {i}, batch {bi}, dim {d}: {cached} != {reference}"
                );
            }
        }
    }
}

#[test]
fn multi_query_suffix_matches_full_sequence_bitwise() {
    // A chunked decode step: the last 3 queries of an 8-position sequence
    // against the full 8-position cache (offset 5).
    let (b, s, h, heads) = (1, 8, 8, 4);
    let q = filled(vec![b, s, h], 7);
    let k = filled(vec![b, s, h], 8);
    let v = filled(vec![b, s, h], 9);
    let full = attention(&q, &k, &v, heads);

    let suffix = q.slice_axis(1, 5, 8).unwrap();
    let ctx = attention(&suffix, &k, &v, heads);
    assert_eq!(ctx.shape(), &[b, 3, h]);
    for (at, i) in (5..8).enumerate() {
        for d in 0..h {
            assert_eq!(
                ctx.data()[at * h + d].to_bits(),
                full.data()[i * h + d].to_bits(),
                "suffix row {i}, dim {d}"
            );
        }
    }
}

#[test]
fn rectangular_attention_runs_through_the_executor() {
    // The graph path (validation + shape inference) accepts the decode
    // shapes too, and produces the same bits as the eager path.
    let (h, heads, past) = (8, 2, 4);
    let mut g = Graph::new();
    let q = g.input("q", vec![1, 1, h]);
    let k = g.input("k", vec![1, past, h]);
    let v = g.input("v", vec![1, past, h]);
    let scores = g.emit(Op::AttnScores { heads, causal: true }, &[q, k], Role::Forward).unwrap();
    let probs = g.emit(Op::Softmax, &[scores], Role::Forward).unwrap();
    let ctx = g.emit(Op::AttnContext { heads }, &[probs, v], Role::Forward).unwrap();
    g.validate().unwrap();

    let qt = filled(vec![1, 1, h], 11);
    let kt = filled(vec![1, past, h], 12);
    let vt = filled(vec![1, past, h], 13);
    let mut bindings = Bindings::new(1);
    bindings.set_all(q, qt.clone());
    bindings.set_all(k, kt.clone());
    bindings.set_all(v, vt.clone());
    let out = Executor::new(&g, 1).unwrap().run(bindings).unwrap();
    let graph_ctx = out.get(0, ctx).unwrap();
    let eager_ctx = attention(&qt, &kt, &vt, heads);
    assert_eq!(graph_ctx.shape(), &[1, 1, h]);
    assert_eq!(
        graph_ctx.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        eager_ctx.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn more_queries_than_keys_is_rejected() {
    let q = filled(vec![1, 4, 8], 1);
    let k = filled(vec![1, 2, 8], 2);
    assert!(eval_op(&Op::AttnScores { heads: 2, causal: true }, &[&q, &k]).is_err());
}

#[test]
fn rectangular_backward_is_rejected_not_misshaped() {
    // dy from a rectangular forward must be refused by the training-only
    // backward kernels instead of silently producing garbage.
    let k = filled(vec![1, 6, 8], 3);
    let dy = filled(vec![1, 2, 1, 6], 4);
    assert!(eval_op(&Op::AttnScoresGradQ { heads: 2, causal: true }, &[&k, &dy]).is_err());
    assert!(eval_op(&Op::AttnScoresGradK { heads: 2, causal: true }, &[&k, &dy]).is_err());
}
