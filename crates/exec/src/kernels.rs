//! Per-instruction numeric kernels (single device).
//!
//! Matmuls route through `lancet-tensor`'s packed GEMM engine; the
//! attention kernels below chunk their independent (batch, head) /
//! batch units over the same shared thread pool. Every kernel keeps a
//! fixed per-element accumulation order, so results are bit-identical
//! for any worker count.

use lancet_ir::{GateKind, Op};
use lancet_moe::{route, CapacityState, Routing};
use lancet_tensor::pool::{par_ranges, SharedSliceMut};
use lancet_tensor::{PackedTensor, Tensor, TensorError};

/// Internal kernel failure, wrapped with instruction context by the
/// executor.
#[derive(Debug)]
pub(crate) enum KernelFailure {
    Tensor(TensorError),
    Moe(lancet_moe::MoeError),
    Unsupported(String),
}

impl From<TensorError> for KernelFailure {
    fn from(e: TensorError) -> Self {
        KernelFailure::Tensor(e)
    }
}

impl From<lancet_moe::MoeError> for KernelFailure {
    fn from(e: lancet_moe::MoeError) -> Self {
        KernelFailure::Moe(e)
    }
}

type KResult = Result<Vec<Tensor>, KernelFailure>;

/// Flattens all leading dims into rows: `(…, D) → (N, D)`.
fn as_rows(x: &Tensor) -> Result<Tensor, TensorError> {
    let d = *x.shape().last().unwrap_or(&1);
    let n = x.volume() / d.max(1);
    x.reshape(vec![n, d])
}

/// Reconstructs a slot-based routing from its tensor form; `tokens` is
/// the number of tokens so `k = slots / tokens` can be derived.
fn routing_from(assign: &Tensor, scale: &Tensor, tokens: usize) -> Routing {
    let k = (assign.volume() / tokens.max(1)).max(1);
    Routing {
        k,
        assign: assign.data().iter().map(|&a| a as i32).collect(),
        scale: scale.data().to_vec(),
    }
}

fn routing_tensors(r: &Routing) -> (Tensor, Tensor) {
    let t = r.len();
    let assign = Tensor::from_vec(vec![t], r.assign.iter().map(|&a| a as f32).collect())
        .expect("assign volume");
    let scale = Tensor::from_vec(vec![t], r.scale.clone()).expect("scale volume");
    (assign, scale)
}

/// Gating logits and softmax scores for `(B,S,H) x (H,E)`.
fn gate_scores(x: &Tensor, wg: &Tensor) -> Result<Tensor, TensorError> {
    let rows = as_rows(x)?;
    Ok(rows.matmul(wg)?.softmax_last())
}

/// Evaluates a non-collective instruction on one device.
///
/// `packed_b` optionally carries the prepacked panel form of the
/// instruction's weight operand (`ins[1]` of the matmul-family ops); when
/// its metadata matches the bound tensor, the kernel skips per-call `B`
/// packing. The fast path is bit-identical to the repacking path, so a
/// stale or absent pack only costs time, never correctness — but callers
/// (the executor via `Bindings`) still invalidate packs on rebinding,
/// because a pack is a *value* snapshot `matches` cannot vouch for.
pub(crate) fn eval(op: &Op, ins: &[&Tensor], packed_b: Option<&PackedTensor>, _devices: usize) -> KResult {
    match op {
        Op::MatMul { transpose_b } => {
            let x = ins[0];
            let w = ins[1];
            let rows = as_rows(x)?;
            let y = match packed_b {
                Some(pb) if pb.matches(w, *transpose_b) => rows.matmul_prepacked(pb)?,
                _ => rows.matmul_t(w, false, *transpose_b)?,
            };
            let mut dims = x.shape().to_vec();
            *dims.last_mut().expect("rank>=1") = y.shape()[1];
            Ok(vec![y.reshape(dims)?])
        }
        Op::MatMulDw => {
            let x = as_rows(ins[0])?;
            let dy = as_rows(ins[1])?;
            Ok(vec![x.matmul_t(&dy, true, false)?])
        }
        Op::BatchedMatMul { transpose_b } => {
            let x = ins[0];
            if !*transpose_b {
                if let Some(pb) = packed_b.filter(|pb| pb.matches(ins[1], false)) {
                    return Ok(vec![x.batched_matmul_prepacked(pb)?]);
                }
            }
            let wt;
            let w = if *transpose_b {
                wt = ins[1].permute(&[0, 2, 1])?;
                &wt
            } else {
                ins[1]
            };
            Ok(vec![x.batched_matmul(w)?])
        }
        Op::BatchedMatMulDw => {
            // (E,C,K)^T (E,C,N) per expert -> (E,K,N)
            let xt = ins[0].permute(&[0, 2, 1])?;
            Ok(vec![xt.batched_matmul(ins[1])?])
        }
        Op::Add => Ok(vec![ins[0].add(ins[1])?]),
        Op::Mul => Ok(vec![ins[0].mul(ins[1])?]),
        Op::BiasAdd => Ok(vec![ins[0].bias_add(ins[1])?]),
        Op::SumLeading => {
            let rows = as_rows(ins[0])?;
            Ok(vec![rows.sum_axis(0)?])
        }
        Op::Scale { factor } => Ok(vec![ins[0].scale(*factor)]),
        Op::Relu => Ok(vec![ins[0].relu()]),
        Op::ReluGrad => Ok(vec![ins[0].relu_grad(ins[1])?]),
        Op::Gelu => Ok(vec![ins[0].gelu()]),
        Op::GeluGrad => Ok(vec![ins[0].gelu_grad(ins[1])?]),
        Op::Silu => Ok(vec![ins[0].silu()]),
        Op::SiluGrad => Ok(vec![ins[0].silu_grad(ins[1])?]),
        Op::RmsNorm { eps } => Ok(vec![ins[0].rms_norm(ins[1], *eps)?]),
        Op::RmsNormGradX { eps } => {
            let rows = as_rows(ins[0])?;
            let drows = as_rows(ins[2])?;
            let (dx, _) = rows.rms_norm_grad(ins[1], &drows, *eps)?;
            Ok(vec![dx.reshape(ins[0].shape().to_vec())?])
        }
        Op::RmsNormGradGamma { eps } => {
            // dgamma is gamma-independent; evaluate with unit gamma.
            let rows = as_rows(ins[0])?;
            let drows = as_rows(ins[1])?;
            let ones = Tensor::full(vec![*rows.shape().last().expect("rank 2")], 1.0);
            let (_, dgamma) = rows.rms_norm_grad(&ones, &drows, *eps)?;
            Ok(vec![dgamma])
        }
        Op::Softmax => Ok(vec![ins[0].softmax_last()]),
        Op::SoftmaxGrad => Ok(vec![ins[0].softmax_last_grad(ins[1])?]),
        Op::Dropout { .. } => Ok(vec![ins[0].clone()]),
        Op::LayerNorm { eps } => Ok(vec![ins[0].layer_norm(ins[1], ins[2], *eps)?]),
        Op::LayerNormGradX { eps } => {
            let rows = as_rows(ins[0])?;
            let drows = as_rows(ins[2])?;
            let (dx, _, _) = rows.layer_norm_grad(ins[1], &drows, *eps)?;
            Ok(vec![dx.reshape(ins[0].shape().to_vec())?])
        }
        Op::LayerNormGradGamma { eps } => {
            // dgamma does not depend on gamma; evaluate with unit gamma.
            let rows = as_rows(ins[0])?;
            let drows = as_rows(ins[1])?;
            let ones = Tensor::full(vec![*rows.shape().last().expect("rank 2")], 1.0);
            let (_, dgamma, _) = rows.layer_norm_grad(&ones, &drows, *eps)?;
            Ok(vec![dgamma])
        }
        Op::LayerNormGradBeta => {
            let drows = as_rows(ins[0])?;
            Ok(vec![drows.sum_axis(0)?])
        }
        Op::Embedding => {
            let (table, ids) = (ins[0], ins[1]);
            let (v, h) = (table.shape()[0], table.shape()[1]);
            let (b, s) = (ids.shape()[0], ids.shape()[1]);
            let mut out = Tensor::zeros(vec![b, s, h]);
            for (t, &id) in ids.data().iter().enumerate() {
                let id = (id as usize).min(v - 1);
                out.data_mut()[t * h..(t + 1) * h].copy_from_slice(&table.data()[id * h..(id + 1) * h]);
            }
            Ok(vec![out])
        }
        Op::EmbeddingGrad => {
            let (table, ids, dy) = (ins[0], ins[1], ins[2]);
            let (v, h) = (table.shape()[0], table.shape()[1]);
            let mut dtable = Tensor::zeros(vec![v, h]);
            for (t, &id) in ids.data().iter().enumerate() {
                let id = (id as usize).min(v - 1);
                for i in 0..h {
                    dtable.data_mut()[id * h + i] += dy.data()[t * h + i];
                }
            }
            Ok(vec![dtable])
        }
        Op::AttnScores { heads, causal } => {
            let (q, k) = (ins[0], ins[1]);
            // q is (B, Sq, H), k is (B, Sk, H) with Sq ≤ Sk: the queries
            // are the trailing Sq positions, so query i sits at absolute
            // position i + (Sk − Sq). Sq == Sk (offset 0) is the ordinary
            // full-sequence forward; Sq < Sk the KV-cached decode path.
            let (b, s_q, h) = (q.shape()[0], q.shape()[1], q.shape()[2]);
            let s_k = k.shape()[1];
            if s_q > s_k || k.shape()[0] != b || k.shape()[2] != h {
                return Err(KernelFailure::Unsupported(format!(
                    "attn_scores: q {:?} incompatible with k {:?}",
                    q.shape(),
                    k.shape()
                )));
            }
            let offset = s_k - s_q;
            let (heads, causal) = (*heads, *causal);
            let dh = h / heads;
            let scale = 1.0 / (dh as f32).sqrt();
            let mut out = Tensor::zeros(vec![b, heads, s_q, s_k]);
            let (qd, kd) = (q.data(), k.data());
            let view = SharedSliceMut::new(out.data_mut());
            par_ranges(b * heads, 0, |units| {
                for u in units {
                    let (bi, hd) = (u / heads, u % heads);
                    // SAFETY: each (batch, head) unit owns its score plane.
                    let plane = unsafe { view.range_mut(u * s_q * s_k..(u + 1) * s_q * s_k) };
                    for i in 0..s_q {
                        for j in 0..s_k {
                            plane[i * s_k + j] = if causal && j > i + offset {
                                -1e9
                            } else {
                                let mut acc = 0.0f32;
                                for d in 0..dh {
                                    acc += qd[(bi * s_q + i) * h + hd * dh + d]
                                        * kd[(bi * s_k + j) * h + hd * dh + d];
                                }
                                acc * scale
                            };
                        }
                    }
                }
            });
            Ok(vec![out])
        }
        Op::AttnScoresGradQ { heads, causal } => {
            let (k, dy) = (ins[0], ins[1]);
            // Training graphs are always full-sequence; the KV-cached
            // rectangular forward has no backward.
            if dy.shape()[2] != dy.shape()[3] {
                return Err(KernelFailure::Unsupported(format!(
                    "attn_scores_grad_q: full-sequence (square) dy required, got {:?}",
                    dy.shape()
                )));
            }
            let (b, s, h) = (k.shape()[0], k.shape()[1], k.shape()[2]);
            let (heads, causal) = (*heads, *causal);
            let dh = h / heads;
            let scale = 1.0 / (dh as f32).sqrt();
            let mut dq = Tensor::zeros(vec![b, s, h]);
            let (kd, dyd) = (k.data(), dy.data());
            let view = SharedSliceMut::new(dq.data_mut());
            par_ranges(b, 0, |batches| {
                for bi in batches {
                    // SAFETY: each batch owns its (s, h) gradient block.
                    let blk = unsafe { view.range_mut(bi * s * h..(bi + 1) * s * h) };
                    for hd in 0..heads {
                        for i in 0..s {
                            for j in 0..s {
                                if causal && j > i {
                                    continue;
                                }
                                let g = dyd[((bi * heads + hd) * s + i) * s + j] * scale;
                                for d in 0..dh {
                                    blk[i * h + hd * dh + d] +=
                                        g * kd[(bi * s + j) * h + hd * dh + d];
                                }
                            }
                        }
                    }
                }
            });
            Ok(vec![dq])
        }
        Op::AttnScoresGradK { heads, causal } => {
            let (q, dy) = (ins[0], ins[1]);
            if dy.shape()[2] != dy.shape()[3] {
                return Err(KernelFailure::Unsupported(format!(
                    "attn_scores_grad_k: full-sequence (square) dy required, got {:?}",
                    dy.shape()
                )));
            }
            let (b, s, h) = (q.shape()[0], q.shape()[1], q.shape()[2]);
            let (heads, causal) = (*heads, *causal);
            let dh = h / heads;
            let scale = 1.0 / (dh as f32).sqrt();
            let mut dk = Tensor::zeros(vec![b, s, h]);
            let (qd, dyd) = (q.data(), dy.data());
            let view = SharedSliceMut::new(dk.data_mut());
            par_ranges(b, 0, |batches| {
                for bi in batches {
                    // SAFETY: each batch owns its (s, h) gradient block.
                    let blk = unsafe { view.range_mut(bi * s * h..(bi + 1) * s * h) };
                    for hd in 0..heads {
                        for i in 0..s {
                            for j in 0..s {
                                if causal && j > i {
                                    continue;
                                }
                                let g = dyd[((bi * heads + hd) * s + i) * s + j] * scale;
                                for d in 0..dh {
                                    blk[j * h + hd * dh + d] +=
                                        g * qd[(bi * s + i) * h + hd * dh + d];
                                }
                            }
                        }
                    }
                }
            });
            Ok(vec![dk])
        }
        Op::AttnContext { heads } => {
            let (p, v) = (ins[0], ins[1]);
            // p is (B, heads, Sq, Sk), v is (B, Sk, H): Sq < Sk is the
            // KV-cached decode path (see Op::AttnScores above).
            let (b, s_k, h) = (v.shape()[0], v.shape()[1], v.shape()[2]);
            let s_q = p.shape()[2];
            if p.shape()[0] != b || p.shape()[3] != s_k || s_q > s_k {
                return Err(KernelFailure::Unsupported(format!(
                    "attn_context: p {:?} incompatible with v {:?}",
                    p.shape(),
                    v.shape()
                )));
            }
            let heads = *heads;
            let dh = h / heads;
            let mut out = Tensor::zeros(vec![b, s_q, h]);
            let (pd, vd) = (p.data(), v.data());
            let view = SharedSliceMut::new(out.data_mut());
            par_ranges(b, 0, |batches| {
                for bi in batches {
                    // SAFETY: each batch owns its (s_q, h) output block.
                    let blk = unsafe { view.range_mut(bi * s_q * h..(bi + 1) * s_q * h) };
                    for hd in 0..heads {
                        for i in 0..s_q {
                            for j in 0..s_k {
                                // No w == 0.0 short-circuit: 0·inf and
                                // 0·NaN must propagate per IEEE 754.
                                let w = pd[((bi * heads + hd) * s_q + i) * s_k + j];
                                for d in 0..dh {
                                    blk[i * h + hd * dh + d] +=
                                        w * vd[(bi * s_k + j) * h + hd * dh + d];
                                }
                            }
                        }
                    }
                }
            });
            Ok(vec![out])
        }
        Op::AttnContextGradP { heads } => {
            let (v, dy) = (ins[0], ins[1]);
            let (b, s, h) = (v.shape()[0], v.shape()[1], v.shape()[2]);
            let heads = *heads;
            let dh = h / heads;
            let mut dp = Tensor::zeros(vec![b, heads, s, s]);
            let (vd, dyd) = (v.data(), dy.data());
            let view = SharedSliceMut::new(dp.data_mut());
            par_ranges(b * heads, 0, |units| {
                for u in units {
                    let (bi, hd) = (u / heads, u % heads);
                    // SAFETY: each (batch, head) unit owns its plane.
                    let plane = unsafe { view.range_mut(u * s * s..(u + 1) * s * s) };
                    for i in 0..s {
                        for j in 0..s {
                            let mut acc = 0.0f32;
                            for d in 0..dh {
                                acc += dyd[(bi * s + i) * h + hd * dh + d]
                                    * vd[(bi * s + j) * h + hd * dh + d];
                            }
                            plane[i * s + j] = acc;
                        }
                    }
                }
            });
            Ok(vec![dp])
        }
        Op::AttnContextGradV { heads } => {
            let (p, dy) = (ins[0], ins[1]);
            let (b, s, h) = (dy.shape()[0], dy.shape()[1], dy.shape()[2]);
            let heads = *heads;
            let dh = h / heads;
            let mut dv = Tensor::zeros(vec![b, s, h]);
            let (pd, dyd) = (p.data(), dy.data());
            let view = SharedSliceMut::new(dv.data_mut());
            par_ranges(b, 0, |batches| {
                for bi in batches {
                    // SAFETY: each batch owns its (s, h) gradient block.
                    let blk = unsafe { view.range_mut(bi * s * h..(bi + 1) * s * h) };
                    for hd in 0..heads {
                        for i in 0..s {
                            for j in 0..s {
                                // No w == 0.0 short-circuit: 0·inf and
                                // 0·NaN must propagate per IEEE 754.
                                let w = pd[((bi * heads + hd) * s + i) * s + j];
                                for d in 0..dh {
                                    blk[j * h + hd * dh + d] +=
                                        w * dyd[(bi * s + i) * h + hd * dh + d];
                                }
                            }
                        }
                    }
                }
            });
            Ok(vec![dv])
        }
        Op::CrossEntropy => {
            let (logits, targets) = (ins[0], ins[1]);
            let v = *logits.shape().last().expect("rank 3");
            let probs = logits.softmax_last();
            let t = targets.volume();
            let mut loss = 0.0f32;
            for (ti, &tgt) in targets.data().iter().enumerate() {
                let tgt = (tgt as usize).min(v - 1);
                let p = probs.data()[ti * v + tgt].max(1e-12);
                loss -= p.ln();
            }
            loss /= t as f32;
            Ok(vec![Tensor::from_vec(vec![1], vec![loss])?, probs])
        }
        Op::CrossEntropyGrad => {
            let (probs, targets) = (ins[0], ins[1]);
            let v = *probs.shape().last().expect("rank 3");
            let t = targets.volume();
            let mut d = probs.scale(1.0 / t as f32);
            for (ti, &tgt) in targets.data().iter().enumerate() {
                let tgt = (tgt as usize).min(v - 1);
                d.data_mut()[ti * v + tgt] -= 1.0 / t as f32;
            }
            Ok(vec![d])
        }
        Op::Gate { kind, experts: _, capacity } => {
            let scores_input = gate_scores_input(ins, packed_b)?;
            let r = route_from_scores(*kind, &scores_input, *capacity, None)?;
            let (assign, scale) = routing_tensors(&r);
            Ok(vec![assign, scale])
        }
        Op::GateChunk { kind, experts, capacity, .. } => {
            let scores_input = gate_scores_input(ins, packed_b)?;
            let cap_in = ins[2];
            let mut state = CapacityState::from_used(
                cap_in.data().iter().map(|&x| x as u32).collect(),
            );
            if state.experts() != *experts {
                return Err(KernelFailure::Unsupported(format!(
                    "capacity state has {} experts, op declares {}",
                    state.experts(),
                    experts
                )));
            }
            let r = route_from_scores(*kind, &scores_input, *capacity, Some(&mut state))?;
            let (assign, scale) = routing_tensors(&r);
            let cap_out = Tensor::from_vec(
                vec![*experts],
                state.used().iter().map(|&u| u as f32).collect(),
            )?;
            Ok(vec![assign, scale, cap_out])
        }
        Op::GateGradX { .. } | Op::GateGradW { .. } => {
            let (x, wg, assign, dscale) = (ins[0], ins[1], ins[2], ins[3]);
            let rows = as_rows(x)?;
            let scores = gate_scores(x, wg)?;
            let (t, e) = (scores.shape()[0], scores.shape()[1]);
            let k = (assign.volume() / t.max(1)).max(1);
            // The gate's scale outputs are either raw probabilities
            // (k = 1, Switch-style) or probabilities normalized over the
            // chosen set (top-k, GShard-style); the normalization is
            // inferable from k.
            let normalized = k > 1;
            let mut dlogits = Tensor::zeros(vec![t, e]);
            for ti in 0..t {
                let yrow = &scores.data()[ti * e..(ti + 1) * e];
                let chosen: Vec<(usize, f32)> = (0..k)
                    .filter_map(|j| {
                        let a = assign.data()[ti * k + j];
                        if a < 0.0 { None } else { Some((a as usize, dscale.data()[ti * k + j])) }
                    })
                    .collect();
                if chosen.is_empty() {
                    continue;
                }
                // dL/dp (upstream gradient on the softmax probabilities).
                let mut dp = vec![0.0f32; e];
                if normalized {
                    // Forward: scale_j = p_j / S with S = Σ p over the
                    // *original* top-k selection (dropped slots lose their
                    // output but still participated in the normalizer).
                    // Recompute that selection from the scores — same
                    // ordering rule as the router (descending score, ties
                    // by index).
                    let mut selection: Vec<usize> = (0..e).collect();
                    selection.sort_by(|&a, &b| {
                        yrow[b].partial_cmp(&yrow[a]).expect("finite").then(a.cmp(&b))
                    });
                    selection.truncate(k.min(e));
                    let sum: f32 = selection.iter().map(|&c| yrow[c]).sum::<f32>().max(1e-12);
                    for &(cj, gj) in &chosen {
                        // ∂(p_cj / S)/∂p_m = (δ_{cj m} S − p_cj) / S².
                        for &cm in &selection {
                            let delta = if cj == cm { sum } else { 0.0 };
                            dp[cm] += gj * (delta - yrow[cj]) / (sum * sum);
                        }
                    }
                } else {
                    for &(c, g) in &chosen {
                        dp[c] += g;
                    }
                }
                // Softmax backward: dlogit_j = p_j (dp_j − Σ_m dp_m p_m).
                let dot: f32 = (0..e).map(|m| dp[m] * yrow[m]).sum();
                for j in 0..e {
                    dlogits.data_mut()[ti * e + j] = yrow[j] * (dp[j] - dot);
                }
            }
            if matches!(op, Op::GateGradX { .. }) {
                let dx = dlogits.matmul_t(wg, false, true)?;
                Ok(vec![dx.reshape(x.shape().to_vec())?])
            } else {
                Ok(vec![rows.matmul_t(&dlogits, true, false)?])
            }
        }
        Op::MoeDispatch { experts, capacity } | Op::MoeDispatchIrr { experts, capacity, .. } => {
            let x = as_rows(ins[0])?;
            let r = routing_from(ins[1], ins[2], x.shape()[0]);
            match op {
                Op::MoeDispatch { .. } => {
                    Ok(vec![lancet_moe::dispatch_dense(&x, &r, *experts, *capacity)?])
                }
                _ => {
                    let chunk = lancet_moe::dispatch_irregular(&x, &r, *experts, *capacity)?;
                    let counts = Tensor::from_vec(
                        vec![*experts],
                        chunk.counts.iter().map(|&c| c as f32).collect(),
                    )?;
                    Ok(vec![chunk.buf, counts])
                }
            }
        }
        Op::MoeDispatchGrad { experts, capacity, batch, seq }
        | Op::MoeDispatchIrrGrad { experts, capacity, batch, seq } => {
            // dx[t] = Σ_j dbuf[assign[t,j], slot[t,j]] — a gather with
            // unit scale on every kept slot (the forward replicated the
            // token to each chosen expert).
            let (assign, dbuf) = (ins[0], ins[1]);
            let tokens = batch * seq;
            let k = (assign.volume() / tokens.max(1)).max(1);
            let unit_scale: Vec<f32> = assign.data().iter().map(|&a| if a < 0.0 { 0.0 } else { 1.0 }).collect();
            let r = Routing {
                k,
                assign: assign.data().iter().map(|&a| a as i32).collect(),
                scale: unit_scale,
            };
            let dx = lancet_moe::gather_dense(dbuf, &r, *experts, *capacity)?;
            let h = dbuf.shape()[2];
            Ok(vec![dx.reshape(vec![*batch, *seq, h])?])
        }
        Op::MoeGather { experts, capacity, batch, seq }
        | Op::MoeGatherIrr { experts, capacity, batch, seq } => {
            let r = routing_from(ins[1], ins[2], batch * seq);
            let y = lancet_moe::gather_dense(ins[0], &r, *experts, *capacity)?;
            let h = ins[0].shape()[2];
            Ok(vec![y.reshape(vec![*batch, *seq, h])?])
        }
        Op::MoeGatherGradBuf { experts, capacity } | Op::MoeGatherIrrGradBuf { experts, capacity } => {
            // dbuf[e_s, pos_s] = scale_s · dy[token(s)] per kept slot,
            // with buffer positions assigned exactly as dispatch does.
            let (assign, scale, dy) = (ins[0], ins[1], ins[2]);
            let dy_rows = as_rows(dy)?;
            let h = *dy_rows.shape().last().expect("rank 2");
            let tokens = dy_rows.shape()[0];
            let k = (assign.volume() / tokens.max(1)).max(1);
            let mut dbuf = Tensor::zeros(vec![*experts, *capacity, h]);
            let mut next = vec![0usize; *experts];
            for (idx, &a) in assign.data().iter().enumerate() {
                if a < 0.0 {
                    continue;
                }
                let e = a as usize;
                let pos = next[e];
                next[e] += 1;
                let token = idx / k;
                let w = scale.data()[idx];
                let dst = (e * capacity + pos) * h;
                for i in 0..h {
                    dbuf.data_mut()[dst + i] = w * dy_rows.data()[token * h + i];
                }
            }
            Ok(vec![dbuf])
        }
        Op::MoeGatherGradScale { experts: _, capacity } => {
            // dscale_s = ⟨dy[token(s)], buf[e_s, pos_s]⟩ per kept slot.
            let (buf, assign, dy) = (ins[0], ins[1], ins[2]);
            let dy_rows = as_rows(dy)?;
            let h = *dy_rows.shape().last().expect("rank 2");
            let tokens = dy_rows.shape()[0];
            let slots = assign.volume();
            let k = (slots / tokens.max(1)).max(1);
            let experts = buf.shape()[0];
            let mut dscale = Tensor::zeros(vec![slots]);
            let mut next = vec![0usize; experts];
            for (idx, &a) in assign.data().iter().enumerate() {
                if a < 0.0 {
                    continue;
                }
                let e = a as usize;
                let pos = next[e];
                next[e] += 1;
                let token = idx / k;
                let src = (e * capacity + pos) * h;
                let mut acc = 0.0f32;
                for i in 0..h {
                    acc += buf.data()[src + i] * dy_rows.data()[token * h + i];
                }
                dscale.data_mut()[idx] = acc;
            }
            Ok(vec![dscale])
        }
        Op::ExpertsLayout { gpus } => {
            let b = ins[0];
            let (e, c, m) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            let el = e / gpus;
            let v = b.reshape(vec![*gpus, el, c, m])?.permute(&[1, 0, 2, 3])?;
            Ok(vec![v.reshape(vec![el, gpus * c, m])?])
        }
        Op::ExpertsLayoutInv { gpus } => {
            let b = ins[0];
            let (el, gc, m) = (b.shape()[0], b.shape()[1], b.shape()[2]);
            let c = gc / gpus;
            let v = b.reshape(vec![el, *gpus, c, m])?.permute(&[1, 0, 2, 3])?;
            Ok(vec![v.reshape(vec![el * gpus, c, m])?])
        }
        Op::Slice { axis, start, end } => Ok(vec![ins[0].slice_axis(*axis, *start, *end)?]),
        Op::Pad { axis, before, after } => {
            let x = ins[0];
            let mut parts: Vec<Tensor> = Vec::with_capacity(3);
            if *before > 0 {
                parts.push(Tensor::zeros(x.shape_obj().with_dim(*axis, *before)));
            }
            parts.push(x.clone());
            if *after > 0 {
                parts.push(Tensor::zeros(x.shape_obj().with_dim(*axis, *after)));
            }
            let refs: Vec<&Tensor> = parts.iter().collect();
            Ok(vec![Tensor::concat(&refs, *axis)?])
        }
        Op::Concat { axis } => Ok(vec![Tensor::concat(ins, *axis)?]),
        Op::Zeros { shape } => Ok(vec![Tensor::zeros(shape.clone())]),
        Op::SgdUpdate { lr } => Ok(vec![ins[0].sub(&ins[1].scale(*lr))?]),
        Op::SgdMomentumUpdate { lr, momentum } => {
            let (w, dw, vel) = (ins[0], ins[1], ins[2]);
            let vel_next = vel.scale(*momentum).add(dw)?;
            let w_next = w.sub(&vel_next.scale(*lr))?;
            Ok(vec![w_next, vel_next])
        }
        Op::AdamUpdate { lr, beta1, beta2, eps } => {
            let (w, dw, m, v) = (ins[0], ins[1], ins[2], ins[3]);
            let m_next = m.scale(*beta1).add(&dw.scale(1.0 - beta1))?;
            let v_next = v.scale(*beta2).add(&dw.mul(dw)?.scale(1.0 - beta2))?;
            let mut w_next = w.clone();
            for i in 0..w_next.volume() {
                let step = lr * m_next.data()[i] / (v_next.data()[i].sqrt() + eps);
                w_next.data_mut()[i] -= step;
            }
            Ok(vec![w_next, m_next, v_next])
        }
        Op::AllToAll
        | Op::AllToAllIrr
        | Op::AllReduce
        | Op::AllGather { .. }
        | Op::ReduceScatter { .. } => Err(KernelFailure::Unsupported(
            "collectives are handled by the executor".into(),
        )),
    }
}

/// Extracts `(T,E)` logits for a gate instruction's inputs `[x, wg, …]`,
/// using the prepacked form of `wg` when one matches.
fn gate_scores_input(ins: &[&Tensor], packed: Option<&PackedTensor>) -> Result<Tensor, KernelFailure> {
    let rows = as_rows(ins[0])?;
    Ok(match packed {
        Some(pb) if pb.matches(ins[1], false) => rows.matmul_prepacked(pb)?,
        _ => rows.matmul(ins[1])?,
    })
}

fn route_from_scores(
    kind: GateKind,
    logits: &Tensor,
    capacity: usize,
    state: Option<&mut CapacityState>,
) -> Result<Routing, KernelFailure> {
    Ok(route(kind, logits, capacity, state)?)
}
