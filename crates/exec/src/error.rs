use lancet_ir::InstrId;
use std::fmt;

/// Errors produced while executing a graph numerically.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A required input/weight tensor was not bound before execution.
    Unbound {
        /// The tensor's debug name.
        name: String,
    },
    /// The graph failed validation before execution.
    Ir(lancet_ir::IrError),
    /// A tensor kernel failed inside an instruction.
    Kernel {
        /// The failing instruction.
        instr: InstrId,
        /// Operator name.
        op: &'static str,
        /// Underlying tensor error.
        source: lancet_tensor::TensorError,
    },
    /// The MoE data plane failed inside an instruction.
    Moe {
        /// The failing instruction.
        instr: InstrId,
        /// Operator name.
        op: &'static str,
        /// Underlying data-plane error.
        source: lancet_moe::MoeError,
    },
    /// An operator is not executable (appears only as a cost-model
    /// placeholder) or its attributes are inconsistent with its inputs.
    Unsupported {
        /// The failing instruction.
        instr: InstrId,
        /// Explanation.
        detail: String,
    },
    /// A bound tensor's shape differs from its IR declaration.
    ShapeMismatch {
        /// The tensor's debug name.
        name: String,
        /// Declared shape.
        declared: Vec<usize>,
        /// Bound shape.
        bound: Vec<usize>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Unbound { name } => write!(f, "tensor `{name}` was not bound"),
            ExecError::Ir(e) => write!(f, "invalid graph: {e}"),
            ExecError::Kernel { instr, op, source } => {
                write!(f, "kernel failure in {instr} ({op}): {source}")
            }
            ExecError::Moe { instr, op, source } => {
                write!(f, "data-plane failure in {instr} ({op}): {source}")
            }
            ExecError::Unsupported { instr, detail } => {
                write!(f, "unsupported instruction {instr}: {detail}")
            }
            ExecError::ShapeMismatch { name, declared, bound } => {
                write!(f, "tensor `{name}` bound with shape {bound:?}, declared {declared:?}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Ir(e) => Some(e),
            ExecError::Kernel { source, .. } => Some(source),
            ExecError::Moe { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<lancet_ir::IrError> for ExecError {
    fn from(e: lancet_ir::IrError) -> Self {
        ExecError::Ir(e)
    }
}
