//! Per-device tensor bindings for graph execution.

use crate::{ExecError, Result};
use lancet_ir::{Graph, Op, TensorId, TensorKind};
use lancet_tensor::{PackedTensor, Tensor, TensorRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Tensor values for every device participating in an execution.
///
/// Inputs and weights must be bound before [`Executor::run`]; activations
/// are filled in during execution and can be read afterwards.
///
/// Values are reference-counted internally: cloning `Bindings` (or
/// replicating one tensor across devices with [`Bindings::set_all`])
/// shares element buffers instead of copying them. A serving loop can
/// therefore keep one weight-bound `Bindings` per model and clone it for
/// every request without re-allocating any weight storage — see
/// [`Bindings::shares_value`] for the observable guarantee.
///
/// [`Executor::run`]: crate::Executor::run
#[derive(Debug, Clone)]
pub struct Bindings {
    per_device: Vec<HashMap<TensorId, Arc<Tensor>>>,
    /// Prepacked panel forms of bound weights (see
    /// [`Bindings::prepack_weights`]), keyed like `per_device`. A pack is
    /// a value snapshot of its tensor, so every rebinding of a tensor id
    /// (`set`/`set_all`/output insertion) drops that id's pack.
    packed: Vec<HashMap<TensorId, Arc<PackedTensor>>>,
}

/// What [`Bindings::prepack_weights`] built: the observable memory cost of
/// keeping weights resident in panel form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepackStats {
    /// Distinct panel buffers built (weights replicated across devices
    /// share one buffer, counted once).
    pub tensors: usize,
    /// Heap bytes held by those buffers.
    pub bytes: u64,
    /// Bindings whose resident pack (installed via
    /// [`Bindings::install_pack`], e.g. loaded from a model store) already
    /// matched and was reused instead of re-packing.
    pub reused: usize,
}

impl Bindings {
    /// Empty bindings for `devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        Bindings { per_device: vec![HashMap::new(); devices], packed: vec![HashMap::new(); devices] }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.per_device.len()
    }

    /// Binds `value` on a single device.
    pub fn set(&mut self, device: usize, tensor: TensorId, value: Tensor) {
        self.packed[device].remove(&tensor);
        self.per_device[device].insert(tensor, Arc::new(value));
    }

    /// Binds the same value on every device (replicated weights/inputs).
    /// The element buffer is shared, not copied per device.
    pub fn set_all(&mut self, tensor: TensorId, value: Tensor) {
        let value = Arc::new(value);
        for (d, p) in self.per_device.iter_mut().zip(&mut self.packed) {
            p.remove(&tensor);
            d.insert(tensor, Arc::clone(&value));
        }
    }

    /// Reads a tensor value from a device, if present.
    pub fn get(&self, device: usize, tensor: TensorId) -> Option<&Tensor> {
        self.per_device[device].get(&tensor).map(Arc::as_ref)
    }

    /// Whether `self` and `other` bind the *same allocation* for `tensor`
    /// on `device` (not merely equal values). This is the executor-reuse
    /// guarantee serving relies on: cloning weight bindings per request
    /// shares buffers, so steady-state serving allocates nothing per call
    /// for weights.
    pub fn shares_value(&self, other: &Bindings, device: usize, tensor: TensorId) -> bool {
        match (self.per_device[device].get(&tensor), other.per_device[device].get(&tensor)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    pub(crate) fn get_required(&self, device: usize, tensor: TensorId, name: &str) -> Result<&Tensor> {
        self.per_device[device]
            .get(&tensor)
            .map(Arc::as_ref)
            .ok_or_else(|| ExecError::Unbound { name: name.to_string() })
    }

    pub(crate) fn insert(&mut self, device: usize, tensor: TensorId, value: Tensor) {
        self.packed[device].remove(&tensor);
        self.per_device[device].insert(tensor, Arc::new(value));
    }

    /// The prepacked panel form of `tensor` on `device`, if one is
    /// resident (and not invalidated by a rebinding since
    /// [`Bindings::prepack_weights`]).
    pub fn packed(&self, device: usize, tensor: TensorId) -> Option<&PackedTensor> {
        self.packed[device].get(&tensor).map(Arc::as_ref)
    }

    /// Installs an externally built panel buffer (e.g. deserialized from a
    /// model store) as `tensor`'s resident pack on `device`, sharing the
    /// buffer via its `Arc`. Returns whether the pack was accepted: it is
    /// rejected (and nothing changes) unless the tensor is bound on the
    /// device and the pack's source shape matches the bound value —
    /// the same staleness contract [`PackedTensor::matches`] enforces at
    /// call time, checked here so a mismatched store degrades to the
    /// repack path instead of silently shadowing it.
    ///
    /// A subsequent [`Bindings::prepack_weights`] leaves matching
    /// installed packs in place (counted in [`PrepackStats::reused`]), so
    /// store-loaded replicas skip the packing pass entirely.
    pub fn install_pack(
        &mut self,
        device: usize,
        tensor: TensorId,
        pack: Arc<PackedTensor>,
    ) -> bool {
        let Some(value) = self.per_device[device].get(&tensor) else { return false };
        if !pack.matches(value, pack.transposed()) {
            return false;
        }
        self.packed[device].insert(tensor, pack);
        true
    }

    /// Packs every bound weight that feeds a matmul-family instruction of
    /// `graph` as its `B` operand into the GEMM's panel layout, so
    /// subsequent [`Executor::run`](crate::Executor::run) calls skip
    /// per-call packing for those products. Serving plans call this once
    /// at build time; per-request clones of the bindings share the panel
    /// buffers (they are `Arc`ed like the values).
    ///
    /// Covered ops: `MatMul` (any `transpose_b`), `Gate`/`GateChunk` (the
    /// gate weight), and `BatchedMatMul { transpose_b: false }` (rank-3
    /// expert stacks). A weight consumed with conflicting layouts, or of
    /// unexpected rank (e.g. sliced/transformed before the matmul), is
    /// left unpacked — the kernels then repack per call exactly as before,
    /// so prepacking is always safe to attempt. Weights replicated across
    /// devices (same `Arc`) pack once and share the buffer.
    pub fn prepack_weights(&mut self, graph: &Graph) -> PrepackStats {
        #[derive(Clone, Copy, PartialEq, Eq)]
        enum Want {
            Mat { transpose_b: bool },
            Batched,
        }
        let mut wanted: HashMap<TensorId, Option<Want>> = HashMap::new();
        for instr in graph.instrs() {
            let want = match &instr.op {
                Op::MatMul { transpose_b } => Want::Mat { transpose_b: *transpose_b },
                Op::Gate { .. } | Op::GateChunk { .. } => Want::Mat { transpose_b: false },
                Op::BatchedMatMul { transpose_b: false } => Want::Batched,
                _ => continue,
            };
            let Some(&tid) = instr.inputs.get(1) else { continue };
            if graph.tensor(tid).kind != TensorKind::Weight {
                continue;
            }
            wanted
                .entry(tid)
                .and_modify(|w| {
                    if *w != Some(want) {
                        *w = None;
                    }
                })
                .or_insert(Some(want));
        }
        let mut order: Vec<(TensorId, Want)> =
            wanted.into_iter().filter_map(|(t, w)| w.map(|w| (t, w))).collect();
        order.sort_by_key(|(t, _)| t.0);

        let mut stats = PrepackStats::default();
        for (tid, want) in order {
            // Replicated weights share one value Arc across devices; key
            // built packs by that pointer so they share one panel buffer.
            let mut built: Vec<(*const Tensor, Arc<PackedTensor>)> = Vec::new();
            for d in 0..self.per_device.len() {
                let Some(value) = self.per_device[d].get(&tid) else { continue };
                // A matching resident pack (installed from a model store)
                // already serves this binding — keep it, skip the pack.
                if let Some(existing) = self.packed[d].get(&tid) {
                    let keeps = match want {
                        Want::Mat { transpose_b } => existing.matches(value, transpose_b),
                        Want::Batched => value.rank() == 3 && existing.matches(value, false),
                    };
                    if keeps {
                        stats.reused += 1;
                        continue;
                    }
                }
                let key = Arc::as_ptr(value);
                let pack = match built.iter().find(|(k, _)| *k == key) {
                    Some((_, p)) => Arc::clone(p),
                    None => {
                        let packed = match want {
                            Want::Mat { transpose_b } if value.rank() == 2 => {
                                PackedTensor::pack(value, transpose_b)
                            }
                            Want::Batched if value.rank() == 3 => PackedTensor::pack_batched(value),
                            _ => continue,
                        };
                        let Ok(packed) = packed else { continue };
                        stats.tensors += 1;
                        stats.bytes += packed.bytes();
                        let packed = Arc::new(packed);
                        built.push((key, Arc::clone(&packed)));
                        packed
                    }
                };
                self.packed[d].insert(tid, pack);
            }
        }
        stats
    }
}

/// Randomly initializes every weight of `graph` into fresh [`Bindings`].
///
/// Weights whose name contains `"expert"` are *expert-local*: they receive
/// a different initialization per device (expert parallelism shards
/// experts). All other weights are replicated identically, matching data
/// parallelism.
pub fn init_weights(graph: &Graph, devices: usize, seed: u64) -> Bindings {
    let mut b = Bindings::new(devices);
    for t in graph.tensors() {
        if t.kind != TensorKind::Weight {
            continue;
        }
        // Optimizer state starts at zero.
        if t.name.starts_with("opt.") {
            b.set_all(t.id, Tensor::zeros(t.shape.clone()));
            continue;
        }
        let fan_in = if t.shape.rank() >= 2 { t.shape.dim(t.shape.rank() - 2) } else { t.shape.volume().max(1) };
        let std = 1.0 / (fan_in as f32).sqrt();
        if t.name.contains("expert") {
            for d in 0..devices {
                let mut rng = TensorRng::seed(seed ^ (t.id.0 as u64) << 16 ^ d as u64);
                b.set(d, t.id, rng.normal(t.shape.clone(), std));
            }
        } else {
            let mut rng = TensorRng::seed(seed ^ (t.id.0 as u64) << 16);
            b.set_all(t.id, rng.normal(t.shape.clone(), std));
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::{Op, Role};

    #[test]
    fn set_all_replicates() {
        let mut b = Bindings::new(3);
        let t = TensorId(0);
        b.set_all(t, Tensor::scalar(5.0));
        for d in 0..3 {
            assert_eq!(b.get(d, t).unwrap().data(), &[5.0]);
        }
    }

    #[test]
    fn init_weights_shards_experts() {
        let mut g = Graph::new();
        let shared = g.weight("w", vec![4, 4]);
        let expert = g.weight("expert.w1", vec![2, 4, 4]);
        let x = g.input("x", vec![2, 4]);
        let _ = g.emit(Op::MatMul { transpose_b: false }, &[x, shared], Role::Forward).unwrap();
        let b = init_weights(&g, 2, 42);
        assert_eq!(b.get(0, shared), b.get(1, shared));
        assert_ne!(b.get(0, expert), b.get(1, expert));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = Bindings::new(0);
    }

    #[test]
    fn installed_packs_are_validated_and_reused() {
        let mut g = Graph::new();
        let w = g.weight("w", vec![4, 6]);
        let x = g.input("x", vec![2, 4]);
        let _ = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();

        let mut b = Bindings::new(2);
        let value = Tensor::full(vec![4, 6], 0.5);
        b.set_all(w, value.clone());

        // Unbound tensor or mismatched shape: rejected, nothing installed.
        let wrong = Arc::new(PackedTensor::pack(&Tensor::zeros(vec![5, 6]), false).unwrap());
        assert!(!b.install_pack(0, w, Arc::clone(&wrong)));
        assert!(!b.install_pack(0, TensorId(999), Arc::clone(&wrong)));
        assert!(b.packed(0, w).is_none());

        // A matching pack installs and prepack_weights keeps it.
        let good = Arc::new(PackedTensor::pack(&value, false).unwrap());
        assert!(b.install_pack(0, w, Arc::clone(&good)));
        assert!(b.install_pack(1, w, Arc::clone(&good)));
        let stats = b.prepack_weights(&g);
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.tensors, 0);
        assert!(std::ptr::eq(b.packed(0, w).unwrap(), good.as_ref()));

        // Rebinding still invalidates an installed pack.
        b.set(0, w, Tensor::full(vec![4, 6], 1.5));
        assert!(b.packed(0, w).is_none());
    }

    #[test]
    fn clone_and_set_all_share_allocations() {
        let mut b = Bindings::new(2);
        let t = TensorId(0);
        b.set_all(t, Tensor::full(vec![16], 1.0));
        // Replication shares one buffer across devices…
        assert_eq!(
            b.get(0, t).unwrap().data().as_ptr(),
            b.get(1, t).unwrap().data().as_ptr()
        );
        // …and cloning the bindings shares it with the clone.
        let c = b.clone();
        assert!(c.shares_value(&b, 0, t));
        assert!(c.shares_value(&b, 1, t));
        // Rebinding on the clone leaves the original untouched.
        let mut c2 = c.clone();
        c2.set(0, t, Tensor::full(vec![16], 2.0));
        assert!(!c2.shares_value(&b, 0, t));
        assert_eq!(b.get(0, t).unwrap().data()[0], 1.0);
    }
}
