//! Per-device tensor bindings for graph execution.

use crate::{ExecError, Result};
use lancet_ir::{Graph, TensorId, TensorKind};
use lancet_tensor::{Tensor, TensorRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Tensor values for every device participating in an execution.
///
/// Inputs and weights must be bound before [`Executor::run`]; activations
/// are filled in during execution and can be read afterwards.
///
/// Values are reference-counted internally: cloning `Bindings` (or
/// replicating one tensor across devices with [`Bindings::set_all`])
/// shares element buffers instead of copying them. A serving loop can
/// therefore keep one weight-bound `Bindings` per model and clone it for
/// every request without re-allocating any weight storage — see
/// [`Bindings::shares_value`] for the observable guarantee.
///
/// [`Executor::run`]: crate::Executor::run
#[derive(Debug, Clone)]
pub struct Bindings {
    per_device: Vec<HashMap<TensorId, Arc<Tensor>>>,
}

impl Bindings {
    /// Empty bindings for `devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        Bindings { per_device: vec![HashMap::new(); devices] }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.per_device.len()
    }

    /// Binds `value` on a single device.
    pub fn set(&mut self, device: usize, tensor: TensorId, value: Tensor) {
        self.per_device[device].insert(tensor, Arc::new(value));
    }

    /// Binds the same value on every device (replicated weights/inputs).
    /// The element buffer is shared, not copied per device.
    pub fn set_all(&mut self, tensor: TensorId, value: Tensor) {
        let value = Arc::new(value);
        for d in &mut self.per_device {
            d.insert(tensor, Arc::clone(&value));
        }
    }

    /// Reads a tensor value from a device, if present.
    pub fn get(&self, device: usize, tensor: TensorId) -> Option<&Tensor> {
        self.per_device[device].get(&tensor).map(Arc::as_ref)
    }

    /// Whether `self` and `other` bind the *same allocation* for `tensor`
    /// on `device` (not merely equal values). This is the executor-reuse
    /// guarantee serving relies on: cloning weight bindings per request
    /// shares buffers, so steady-state serving allocates nothing per call
    /// for weights.
    pub fn shares_value(&self, other: &Bindings, device: usize, tensor: TensorId) -> bool {
        match (self.per_device[device].get(&tensor), other.per_device[device].get(&tensor)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    pub(crate) fn get_required(&self, device: usize, tensor: TensorId, name: &str) -> Result<&Tensor> {
        self.per_device[device]
            .get(&tensor)
            .map(Arc::as_ref)
            .ok_or_else(|| ExecError::Unbound { name: name.to_string() })
    }

    pub(crate) fn insert(&mut self, device: usize, tensor: TensorId, value: Tensor) {
        self.per_device[device].insert(tensor, Arc::new(value));
    }
}

/// Randomly initializes every weight of `graph` into fresh [`Bindings`].
///
/// Weights whose name contains `"expert"` are *expert-local*: they receive
/// a different initialization per device (expert parallelism shards
/// experts). All other weights are replicated identically, matching data
/// parallelism.
pub fn init_weights(graph: &Graph, devices: usize, seed: u64) -> Bindings {
    let mut b = Bindings::new(devices);
    for t in graph.tensors() {
        if t.kind != TensorKind::Weight {
            continue;
        }
        // Optimizer state starts at zero.
        if t.name.starts_with("opt.") {
            b.set_all(t.id, Tensor::zeros(t.shape.clone()));
            continue;
        }
        let fan_in = if t.shape.rank() >= 2 { t.shape.dim(t.shape.rank() - 2) } else { t.shape.volume().max(1) };
        let std = 1.0 / (fan_in as f32).sqrt();
        if t.name.contains("expert") {
            for d in 0..devices {
                let mut rng = TensorRng::seed(seed ^ (t.id.0 as u64) << 16 ^ d as u64);
                b.set(d, t.id, rng.normal(t.shape.clone(), std));
            }
        } else {
            let mut rng = TensorRng::seed(seed ^ (t.id.0 as u64) << 16);
            b.set_all(t.id, rng.normal(t.shape.clone(), std));
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::{Op, Role};

    #[test]
    fn set_all_replicates() {
        let mut b = Bindings::new(3);
        let t = TensorId(0);
        b.set_all(t, Tensor::scalar(5.0));
        for d in 0..3 {
            assert_eq!(b.get(d, t).unwrap().data(), &[5.0]);
        }
    }

    #[test]
    fn init_weights_shards_experts() {
        let mut g = Graph::new();
        let shared = g.weight("w", vec![4, 4]);
        let expert = g.weight("expert.w1", vec![2, 4, 4]);
        let x = g.input("x", vec![2, 4]);
        let _ = g.emit(Op::MatMul { transpose_b: false }, &[x, shared], Role::Forward).unwrap();
        let b = init_weights(&g, 2, 42);
        assert_eq!(b.get(0, shared), b.get(1, shared));
        assert_ne!(b.get(0, expert), b.get(1, expert));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = Bindings::new(0);
    }

    #[test]
    fn clone_and_set_all_share_allocations() {
        let mut b = Bindings::new(2);
        let t = TensorId(0);
        b.set_all(t, Tensor::full(vec![16], 1.0));
        // Replication shares one buffer across devices…
        assert_eq!(
            b.get(0, t).unwrap().data().as_ptr(),
            b.get(1, t).unwrap().data().as_ptr()
        );
        // …and cloning the bindings shares it with the clone.
        let c = b.clone();
        assert!(c.shares_value(&b, 0, t));
        assert!(c.shares_value(&b, 1, t));
        // Rebinding on the clone leaves the original untouched.
        let mut c2 = c.clone();
        c2.set(0, t, Tensor::full(vec![16], 2.0));
        assert!(!c2.shares_value(&b, 0, t));
        assert_eq!(b.get(0, t).unwrap().data()[0], 1.0);
    }
}
