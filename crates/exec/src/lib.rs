//! Multi-device SPMD numerical executor for the Lancet IR.
//!
//! Runs a [`lancet_ir::Graph`] on `G` simulated devices holding real `f32`
//! data: compute instructions execute independently per device, collectives
//! (`AllToAll`, `AllToAllIrr`, `AllReduce`) synchronize across devices
//! through the `lancet-moe` data plane.
//!
//! The executor exists to *verify* the compiler: autodiff is checked
//! against finite differences, and the Lancet passes are checked to be
//! semantics-preserving by executing the transformed and original graphs
//! on identical inputs and comparing outputs bit-for-bit (where exact) or
//! within floating-point tolerance.
//!
//! # Example
//!
//! ```
//! use lancet_exec::{Bindings, Executor};
//! use lancet_ir::{Graph, Op, Role};
//! use lancet_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.input("x", vec![2, 2]);
//! let y = g.emit(Op::Relu, &[x], Role::Forward)?;
//!
//! let mut b = Bindings::new(1);
//! b.set_all(x, Tensor::from_vec(vec![2, 2], vec![-1.0, 2.0, -3.0, 4.0])?);
//! let out = Executor::new(&g, 1)?.run(b)?;
//! assert_eq!(out.get(0, y).unwrap().data(), &[0.0, 2.0, 0.0, 4.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bindings;
mod error;
mod executor;
mod kernels;

pub use bindings::{init_weights, Bindings};
pub use error::ExecError;
pub use executor::Executor;

/// Result alias for fallible executor operations.
pub type Result<T> = std::result::Result<T, ExecError>;
