//! Multi-device SPMD numerical executor for the Lancet IR.
//!
//! Runs a [`lancet_ir::Graph`] on `G` simulated devices holding real `f32`
//! data: compute instructions execute independently per device, collectives
//! (`AllToAll`, `AllToAllIrr`, `AllReduce`) synchronize across devices
//! through the `lancet-moe` data plane.
//!
//! The executor exists to *verify* the compiler: autodiff is checked
//! against finite differences, and the Lancet passes are checked to be
//! semantics-preserving by executing the transformed and original graphs
//! on identical inputs and comparing outputs bit-for-bit (where exact) or
//! within floating-point tolerance.
//!
//! # Example
//!
//! ```
//! use lancet_exec::{Bindings, Executor};
//! use lancet_ir::{Graph, Op, Role};
//! use lancet_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.input("x", vec![2, 2]);
//! let y = g.emit(Op::Relu, &[x], Role::Forward)?;
//!
//! let mut b = Bindings::new(1);
//! b.set_all(x, Tensor::from_vec(vec![2, 2], vec![-1.0, 2.0, -3.0, 4.0])?);
//! let out = Executor::new(&g, 1)?.run(b)?;
//! assert_eq!(out.get(0, y).unwrap().data(), &[0.0, 2.0, 0.0, 4.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bindings;
mod error;
mod executor;
mod kernels;

pub use bindings::{init_weights, Bindings, PrepackStats};
pub use error::ExecError;
pub use executor::Executor;

/// Result alias for fallible executor operations.
pub type Result<T> = std::result::Result<T, ExecError>;

/// Evaluates one non-collective op eagerly, outside any graph — the
/// **exact kernels** [`Executor`] runs, exposed for callers that cannot
/// express their computation as a fixed graph (the `lancet-decode`
/// engine's per-step forward, whose attention shapes vary with every
/// sequence's KV length). Because the kernels keep a fixed per-element
/// accumulation order, a value computed here is bit-identical to the same
/// op evaluated inside a graph.
///
/// # Errors
///
/// Returns [`ExecError`] on shape mismatches, kernel failures, or
/// collective ops (which need multi-device context a single eager call
/// does not have). The error's instruction id is a placeholder
/// (`InstrId(u32::MAX)`) since no graph instruction exists.
pub fn eval_op(op: &lancet_ir::Op, ins: &[&lancet_tensor::Tensor]) -> Result<Vec<lancet_tensor::Tensor>> {
    eval_op_packed(op, ins, None)
}

/// [`eval_op`] with an optional prepacked form of the op's `B` operand
/// (`ins[1]` of the matmul family). When the pack's metadata matches the
/// tensor, the kernel skips per-call weight packing — the decode engine
/// packs its weights once at model load and routes every step's matmuls
/// through here. Results are bit-identical to [`eval_op`]; callers are
/// responsible for the pack actually being a snapshot of `ins[1]`'s
/// current values (metadata checks cannot detect a stale pack).
///
/// # Errors
///
/// Same conditions as [`eval_op`].
pub fn eval_op_packed(
    op: &lancet_ir::Op,
    ins: &[&lancet_tensor::Tensor],
    packed_b: Option<&lancet_tensor::PackedTensor>,
) -> Result<Vec<lancet_tensor::Tensor>> {
    use kernels::KernelFailure;
    let instr = lancet_ir::InstrId(u32::MAX);
    kernels::eval(op, ins, packed_b, 1).map_err(|e| match e {
        KernelFailure::Tensor(source) => ExecError::Kernel { instr, op: op.name(), source },
        KernelFailure::Moe(source) => ExecError::Moe { instr, op: op.name(), source },
        KernelFailure::Unsupported(detail) => ExecError::Unsupported { instr, detail },
    })
}
