//! The instruction interpreter.

use crate::kernels::{self, KernelFailure};
use crate::{Bindings, ExecError, Result};
use lancet_ir::{Graph, Op, TensorKind};
use lancet_moe::DispatchedChunk;
use lancet_tensor::Tensor;

/// Executes a validated [`Graph`] over per-device [`Bindings`].
///
/// Compute instructions run independently on each device; collectives
/// synchronize through the `lancet-moe` data plane. See the crate docs for
/// an example.
#[derive(Debug)]
pub struct Executor<'g> {
    graph: &'g Graph,
    devices: usize,
}

impl<'g> Executor<'g> {
    /// Prepares an executor for `graph` on `devices` devices.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Ir`] if the graph fails validation.
    pub fn new(graph: &'g Graph, devices: usize) -> Result<Self> {
        graph.validate()?;
        Ok(Executor { graph, devices })
    }

    /// Prepares an executor for a graph that is already known to be valid
    /// (e.g. it was validated once when a serving plan was built and is
    /// now executed for every request). Skips re-validation, which on a
    /// large model graph is per-call overhead the serving hot path cannot
    /// afford; execution behaves identically to [`Executor::new`]'s.
    pub fn new_prevalidated(graph: &'g Graph, devices: usize) -> Self {
        Executor { graph, devices }
    }

    /// Runs the program, consuming input bindings and returning bindings
    /// extended with every produced tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Unbound`] for missing inputs/weights,
    /// [`ExecError::ShapeMismatch`] for wrongly shaped bindings, and
    /// kernel/data-plane failures wrapped with the offending instruction.
    ///
    /// # Panics
    ///
    /// Panics if `bindings.devices()` differs from the executor's device
    /// count.
    pub fn run(&self, mut bindings: Bindings) -> Result<Bindings> {
        assert_eq!(bindings.devices(), self.devices, "binding/device count mismatch");
        // Check declared shapes of bound inputs and weights.
        for t in self.graph.tensors() {
            if !matches!(t.kind, TensorKind::Input | TensorKind::Weight) {
                continue;
            }
            for d in 0..self.devices {
                let v = bindings.get_required(d, t.id, &t.name)?;
                if v.shape() != t.shape.dims() {
                    return Err(ExecError::ShapeMismatch {
                        name: t.name.clone(),
                        declared: t.shape.dims().to_vec(),
                        bound: v.shape().to_vec(),
                    });
                }
            }
        }

        for instr in self.graph.instrs() {
            if instr.op.is_comm() {
                self.run_collective(instr, &mut bindings)?;
            } else {
                for d in 0..self.devices {
                    // Kernels take borrowed inputs; the borrow ends before
                    // outputs are inserted, so no input is cloned.
                    let outs = {
                        let input_refs: Vec<&Tensor> = instr
                            .inputs
                            .iter()
                            .map(|&t| bindings.get_required(d, t, &self.graph.tensor(t).name))
                            .collect::<Result<_>>()?;
                        // Prepacked weight panels (if `prepack_weights`
                        // ran) live beside the values; hand the matmul
                        // family its `B` operand's pack.
                        let packed = match &instr.op {
                            Op::MatMul { .. }
                            | Op::BatchedMatMul { .. }
                            | Op::Gate { .. }
                            | Op::GateChunk { .. } => {
                                instr.inputs.get(1).and_then(|&t| bindings.packed(d, t))
                            }
                            _ => None,
                        };
                        kernels::eval(&instr.op, &input_refs, packed, self.devices)
                            .map_err(|e| wrap(e, instr))?
                    };
                    debug_assert_eq!(outs.len(), instr.outputs.len());
                    for (&tid, v) in instr.outputs.iter().zip(outs) {
                        bindings.insert(d, tid, v);
                    }
                }
            }
        }
        Ok(bindings)
    }

    fn run_collective(&self, instr: &lancet_ir::Instr, bindings: &mut Bindings) -> Result<()> {
        let gather = |tid, bindings: &Bindings| -> Result<Vec<Tensor>> {
            (0..self.devices)
                .map(|d| {
                    bindings
                        .get_required(d, tid, &self.graph.tensor(tid).name)
                        .cloned()
                })
                .collect()
        };
        match &instr.op {
            Op::AllToAll => {
                let bufs = gather(instr.inputs[0], bindings)?;
                let out = lancet_moe::all_to_all_uniform(&bufs).map_err(|e| ExecError::Moe {
                    instr: instr.id,
                    op: instr.op.name(),
                    source: e,
                })?;
                for (d, v) in out.into_iter().enumerate() {
                    bindings.insert(d, instr.outputs[0], v);
                }
            }
            Op::AllToAllIrr => {
                let bufs = gather(instr.inputs[0], bindings)?;
                let counts = gather(instr.inputs[1], bindings)?;
                let chunks: Vec<DispatchedChunk> = bufs
                    .into_iter()
                    .zip(counts)
                    .map(|(buf, c)| DispatchedChunk {
                        buf,
                        counts: c.data().iter().map(|&x| x as u32).collect(),
                    })
                    .collect();
                let (out, _stats) =
                    lancet_moe::all_to_all_irregular(&chunks).map_err(|e| ExecError::Moe {
                        instr: instr.id,
                        op: instr.op.name(),
                        source: e,
                    })?;
                for (d, chunk) in out.into_iter().enumerate() {
                    let counts_t = Tensor::from_vec(
                        vec![chunk.counts.len()],
                        chunk.counts.iter().map(|&c| c as f32).collect(),
                    )
                    .expect("counts volume matches");
                    bindings.insert(d, instr.outputs[0], chunk.buf);
                    bindings.insert(d, instr.outputs[1], counts_t);
                }
            }
            Op::AllReduce => {
                let vals = gather(instr.inputs[0], bindings)?;
                let out = lancet_moe::all_reduce_sum(&vals).map_err(|e| ExecError::Moe {
                    instr: instr.id,
                    op: instr.op.name(),
                    source: e,
                })?;
                for (d, v) in out.into_iter().enumerate() {
                    bindings.insert(d, instr.outputs[0], v);
                }
            }
            Op::AllGather { gpus } => {
                if *gpus != self.devices {
                    return Err(ExecError::Unsupported {
                        instr: instr.id,
                        detail: format!("all-gather over {gpus} devices in a {}-device run", self.devices),
                    });
                }
                let shards = gather(instr.inputs[0], bindings)?;
                let refs: Vec<&Tensor> = shards.iter().collect();
                let full = Tensor::concat(&refs, 0).map_err(|e| ExecError::Kernel {
                    instr: instr.id,
                    op: instr.op.name(),
                    source: e,
                })?;
                for d in 0..self.devices {
                    bindings.insert(d, instr.outputs[0], full.clone());
                }
            }
            Op::ReduceScatter { gpus } => {
                if *gpus != self.devices {
                    return Err(ExecError::Unsupported {
                        instr: instr.id,
                        detail: format!("reduce-scatter over {gpus} devices in a {}-device run", self.devices),
                    });
                }
                let vals = gather(instr.inputs[0], bindings)?;
                let summed = lancet_moe::all_reduce_sum(&vals).map_err(|e| ExecError::Moe {
                    instr: instr.id,
                    op: instr.op.name(),
                    source: e,
                })?;
                let full = &summed[0];
                let rows = full.shape()[0];
                let shard_rows = rows / self.devices;
                for d in 0..self.devices {
                    let shard = full
                        .slice_axis(0, d * shard_rows, (d + 1) * shard_rows)
                        .map_err(|e| ExecError::Kernel {
                            instr: instr.id,
                            op: instr.op.name(),
                            source: e,
                        })?;
                    bindings.insert(d, instr.outputs[0], shard);
                }
            }
            other => {
                return Err(ExecError::Unsupported {
                    instr: instr.id,
                    detail: format!("{other} is not a collective"),
                })
            }
        }
        Ok(())
    }
}

fn wrap(e: KernelFailure, instr: &lancet_ir::Instr) -> ExecError {
    match e {
        KernelFailure::Tensor(source) => ExecError::Kernel { instr: instr.id, op: instr.op.name(), source },
        KernelFailure::Moe(source) => ExecError::Moe { instr: instr.id, op: instr.op.name(), source },
        KernelFailure::Unsupported(detail) => ExecError::Unsupported { instr: instr.id, detail },
    }
}
