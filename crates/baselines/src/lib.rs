//! Baseline MoE training systems (paper §7, "Baselines") and the unified
//! experiment runner used by the figure harnesses.
//!
//! * **DeepSpeed** — no computation-communication overlapping; PyTorch
//!   compute-op overhead; the highest memory footprint (the paper notes
//!   its earlier OOM).
//! * **Tutel** — overlaps all-to-all with *expert computation only*, by
//!   partitioning along the capacity dimension with overlap degree
//!   searched over {1, 2, 4, 8} (the paper's methodology); PyTorch
//!   compute overhead.
//! * **RAF** — the compiler substrate without Lancet's passes (no
//!   overlap, but compiler-grade op performance).
//! * **Lancet** — both passes; ablation variants run each pass alone.
//!
//! All systems produce a training graph that runs on the same simulator,
//! so measured differences isolate exactly the scheduling/partitioning
//! effects the paper studies.

mod runner;
mod tutel;

pub use runner::{run_system, RunOutcome, System};
pub use tutel::{tutel_degree_graphs, tutel_partition};

use lancet_ir::{build_backward, BackwardOptions, Graph, Result};

/// Compute-op latency multiplier applied to PyTorch-based systems
/// (DeepSpeed, Tutel) relative to the compiler substrate, per the paper's
/// observation that RAF and PyTorch op performance differ.
pub const PYTORCH_COMPUTE_OVERHEAD: f64 = 1.08;

/// Activation-memory multiplier for DeepSpeed (reproduces its higher
/// memory requirement noted in the paper).
pub const DEEPSPEED_MEMORY_OVERHEAD: f64 = 1.35;

/// Activation-memory multiplier for Tutel/RAF/Lancet.
pub const DEFAULT_MEMORY_OVERHEAD: f64 = 1.1;

/// Builds the DeepSpeed-style training graph: straightforward autodiff,
/// no overlap-enabling transformation.
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn deepspeed(forward: Graph, backward: &BackwardOptions) -> Result<Graph> {
    let mut g = forward;
    build_backward(&mut g, backward)?;
    Ok(g)
}

/// Builds the RAF-baseline training graph (identical structure to
/// DeepSpeed's; it differs only in simulated compute overheads).
///
/// # Errors
///
/// Propagates IR construction failures.
pub fn raf(forward: Graph, backward: &BackwardOptions) -> Result<Graph> {
    deepspeed(forward, backward)
}
