//! Unified experiment runner: build → transform → autodiff → simulate.

use crate::{
    deepspeed, raf, tutel_degree_graphs, DEEPSPEED_MEMORY_OVERHEAD, DEFAULT_MEMORY_OVERHEAD,
    PYTORCH_COMPUTE_OVERHEAD,
};
use lancet_core::{Lancet, LancetOptions};
use lancet_cost::{ClusterKind, ClusterSpec, CommModel, ComputeModel};
use lancet_ir::{BackwardOptions, Result};
use lancet_models::{build_forward, GptMoeConfig};
use lancet_sim::{SimConfig, SimReport, Simulator};
use std::time::Duration;

/// The systems compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// DeepSpeed: no overlap, PyTorch overheads, highest memory.
    DeepSpeed,
    /// Tutel: all-to-all/expert overlap, degree searched over {1,2,4,8}.
    Tutel,
    /// RAF: the compiler substrate without Lancet passes.
    Raf,
    /// Lancet with both passes.
    Lancet,
    /// Ablation: dW scheduling only (paper Fig. 16).
    LancetDwOnly,
    /// Ablation: operator partitioning only (paper Fig. 16).
    LancetPartitionOnly,
}

impl System {
    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            System::DeepSpeed => "DeepSpeed",
            System::Tutel => "Tutel",
            System::Raf => "RAF",
            System::Lancet => "Lancet",
            System::LancetDwOnly => "Lancet (dW only)",
            System::LancetPartitionOnly => "Lancet (partition only)",
        }
    }

    /// The full comparison set of paper Figs. 11–13.
    pub fn headline() -> [System; 4] {
        [System::DeepSpeed, System::Tutel, System::Raf, System::Lancet]
    }
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of running one (system, model, cluster) combination.
#[derive(Debug)]
pub struct RunOutcome {
    /// Which system ran.
    pub system: System,
    /// Simulator measurement.
    pub report: SimReport,
    /// The compiler's predicted iteration time (Lancet variants only).
    pub predicted: Option<f64>,
    /// Optimization wall-clock time (Lancet variants only).
    pub opt_time: Option<Duration>,
    /// The overlap degree Tutel's search selected.
    pub tutel_degree: Option<usize>,
}

fn simulator(spec: &ClusterSpec, cfg: &GptMoeConfig, compute_overhead: f64, memory_overhead: f64) -> Simulator {
    let sim_cfg = SimConfig {
        capacity_factor: cfg.capacity_factor,
        seed: 0x1a5ce7 ^ cfg.gpus as u64,
        compute_overhead,
        memory_overhead,
        ..SimConfig::new(cfg.gpus)
    };
    Simulator::new(ComputeModel::new(spec.device.clone()), CommModel::new(spec.clone()), sim_cfg)
}

/// Builds, transforms, differentiates, and simulates one configuration.
///
/// # Errors
///
/// Propagates graph-construction and pass failures.
pub fn run_system(system: System, cfg: &GptMoeConfig, kind: ClusterKind) -> Result<RunOutcome> {
    let nodes = cfg.gpus.div_ceil(8).max(1);
    let spec = ClusterSpec::of(kind, nodes);
    let backward = BackwardOptions::default();
    let forward = build_forward(cfg)?.graph;

    match system {
        System::DeepSpeed => {
            let graph = deepspeed(forward, &backward)?;
            let sim = simulator(&spec, cfg, PYTORCH_COMPUTE_OVERHEAD, DEEPSPEED_MEMORY_OVERHEAD);
            Ok(RunOutcome {
                system,
                report: sim.simulate(&graph),
                predicted: None,
                opt_time: None,
                tutel_degree: None,
            })
        }
        System::Raf => {
            let graph = raf(forward, &backward)?;
            let sim = simulator(&spec, cfg, 1.0, DEFAULT_MEMORY_OVERHEAD);
            Ok(RunOutcome {
                system,
                report: sim.simulate(&graph),
                predicted: None,
                opt_time: None,
                tutel_degree: None,
            })
        }
        System::Tutel => {
            // Search the overlap degree as the paper does: run each and
            // keep the best iteration time.
            let sim = simulator(&spec, cfg, PYTORCH_COMPUTE_OVERHEAD, DEFAULT_MEMORY_OVERHEAD);
            let mut best: Option<(usize, SimReport)> = None;
            for (degree, fwd) in tutel_degree_graphs(&forward)? {
                let mut graph = fwd;
                lancet_ir::build_backward(&mut graph, &backward)?;
                let report = sim.simulate(&graph);
                let better = match &best {
                    Some((_, b)) => report.iteration_time < b.iteration_time,
                    None => true,
                };
                if better {
                    best = Some((degree, report));
                }
            }
            let (degree, report) = best.expect("at least one degree evaluated");
            Ok(RunOutcome { system, report, predicted: None, opt_time: None, tutel_degree: Some(degree) })
        }
        System::Lancet | System::LancetDwOnly | System::LancetPartitionOnly => {
            let options = LancetOptions {
                disable_dw_schedule: system == System::LancetPartitionOnly,
                disable_partition: system == System::LancetDwOnly,
                partition: Default::default(),
                backward,
                prefetch_lookahead: 1,
                placement: None,
                // Baseline comparisons are partition-level by definition;
                // pin the tile scheduler off so an exported
                // LANCET_TILE_COUNT cannot skew figure regeneration.
                tile: None,
            };
            let lancet = Lancet::new(spec.clone(), cfg.gpus, options);
            let outcome = lancet.optimize(forward)?;
            let sim = simulator(&spec, cfg, 1.0, DEFAULT_MEMORY_OVERHEAD);
            Ok(RunOutcome {
                system,
                report: sim.simulate(&outcome.graph),
                predicted: Some(outcome.predicted_time),
                opt_time: Some(outcome.optimization_time),
                tutel_degree: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::GateKind;

    fn cfg() -> GptMoeConfig {
        GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_layers(4).with_batch(8)
    }

    #[test]
    fn all_systems_run() {
        for system in System::headline() {
            let out = run_system(system, &cfg(), ClusterKind::V100).unwrap();
            assert!(out.report.iteration_time > 0.0, "{system}");
        }
    }

    #[test]
    fn lancet_beats_all_baselines() {
        let lancet = run_system(System::Lancet, &cfg(), ClusterKind::V100).unwrap();
        for baseline in [System::DeepSpeed, System::Tutel, System::Raf] {
            let out = run_system(baseline, &cfg(), ClusterKind::V100).unwrap();
            assert!(
                lancet.report.iteration_time < out.report.iteration_time,
                "Lancet {} !< {} {}",
                lancet.report.iteration_time,
                baseline,
                out.report.iteration_time
            );
        }
    }

    #[test]
    fn tutel_beats_deepspeed_and_reports_degree() {
        let tutel = run_system(System::Tutel, &cfg(), ClusterKind::V100).unwrap();
        let ds = run_system(System::DeepSpeed, &cfg(), ClusterKind::V100).unwrap();
        assert!(tutel.report.iteration_time < ds.report.iteration_time);
        assert!(tutel.tutel_degree.is_some());
    }

    #[test]
    fn ablations_bracket_full_lancet() {
        let full = run_system(System::Lancet, &cfg(), ClusterKind::V100).unwrap();
        let dw = run_system(System::LancetDwOnly, &cfg(), ClusterKind::V100).unwrap();
        let part = run_system(System::LancetPartitionOnly, &cfg(), ClusterKind::V100).unwrap();
        let raf = run_system(System::Raf, &cfg(), ClusterKind::V100).unwrap();
        assert!(full.report.iteration_time <= dw.report.iteration_time + 1e-9);
        assert!(full.report.iteration_time <= part.report.iteration_time + 1e-9);
        assert!(dw.report.iteration_time < raf.report.iteration_time);
        assert!(part.report.iteration_time < raf.report.iteration_time);
    }

    #[test]
    fn lancet_reduces_exposed_communication() {
        let lancet = run_system(System::Lancet, &cfg(), ClusterKind::V100).unwrap();
        let raf = run_system(System::Raf, &cfg(), ClusterKind::V100).unwrap();
        assert!(
            lancet.report.exposed_comm() < raf.report.exposed_comm(),
            "exposed comm {} !< {}",
            lancet.report.exposed_comm(),
            raf.report.exposed_comm()
        );
    }
}
