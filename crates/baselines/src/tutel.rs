//! Tutel-style capacity-dimension partitioning of all-to-all + experts.

use lancet_core::{apply_partitions, infer_axes, PartitionSpec};
use lancet_ir::{Graph, IrError, Op, Result};

/// Applies Tutel's overlap transformation with the given `degree`: every
/// forward MoE pipeline's all-to-all → experts → all-to-all region is
/// partitioned along the capacity dimension into `degree` slices, forming
/// the paper's Fig. 4b pipeline. Degree 1 returns the graph unchanged.
///
/// # Errors
///
/// Returns [`IrError::InvalidTransform`] when a region is not
/// capacity-partitionable (should not happen for graphs built by
/// `lancet-models`).
pub fn tutel_partition(forward: &Graph, degree: usize) -> Result<Graph> {
    if degree <= 1 {
        return Ok(forward.clone());
    }
    // Find forward a2a pairs: [first a2a .. matching return a2a].
    let loss_pos = forward
        .instrs()
        .iter()
        .position(|i| matches!(i.op, Op::CrossEntropy))
        .unwrap_or(forward.instrs().len());
    let a2a_positions: Vec<usize> = forward
        .all_to_all_positions()
        .into_iter()
        .filter(|&p| p < loss_pos)
        .collect();
    if !a2a_positions.len().is_multiple_of(2) {
        return Err(IrError::InvalidTransform("unpaired forward all-to-alls".into()));
    }
    let mut specs = Vec::new();
    for pair in a2a_positions.chunks(2) {
        let range = pair[0]..pair[1] + 1;
        let axes = infer_axes(forward, range.clone()).ok_or_else(|| {
            IrError::InvalidTransform(format!("range {range:?} not capacity-partitionable"))
        })?;
        specs.push(PartitionSpec { range, parts: degree, axes });
    }
    apply_partitions(forward, &specs)
}

/// The forward graphs for every *feasible* searched overlap degree
/// (paper: 1, 2, 4, 8 — degrees exceeding the expert capacity are
/// skipped), paired with the degree. Degree 1 is always included.
///
/// # Errors
///
/// Propagates [`tutel_partition`] failures other than infeasible degree.
pub fn tutel_degree_graphs(forward: &Graph) -> Result<Vec<(usize, Graph)>> {
    let mut out = Vec::new();
    for d in [1usize, 2, 4, 8] {
        match tutel_partition(forward, d) {
            Ok(g) => out.push((d, g)),
            // Capacity smaller than the degree: that search point simply
            // does not exist for this model.
            Err(IrError::InvalidTransform(msg)) if msg.contains("parts >") => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::GateKind;
    use lancet_models::{build_forward, GptMoeConfig};

    fn forward() -> Graph {
        let cfg = GptMoeConfig::tiny(2, GateKind::Switch).with_layers(4).with_batch(4);
        build_forward(&cfg).unwrap().graph
    }

    #[test]
    fn degree_one_is_identity() {
        let f = forward();
        let g = tutel_partition(&f, 1).unwrap();
        assert_eq!(g.instrs().len(), f.instrs().len());
    }

    #[test]
    fn capacity_partition_multiplies_alltoalls() {
        let f = forward();
        let n_moe = 2; // layers 1 and 3
        let g = tutel_partition(&f, 4).unwrap();
        assert!(g.validate().is_ok());
        let n_a2a = g.all_to_all_positions().len();
        assert_eq!(n_a2a, n_moe * 2 * 4);
        // No irregular ops: Tutel slices the padded buffer.
        assert!(!g.instrs().iter().any(|i| matches!(i.op, Op::AllToAllIrr)));
        assert!(g.instrs().iter().any(|i| matches!(i.op, Op::Slice { axis: 1, .. })));
    }

    #[test]
    fn works_with_bpr_gate() {
        // Capacity partitioning does not touch the gate, so it applies to
        // batch-prioritized models too.
        let cfg = GptMoeConfig::tiny(2, GateKind::BatchPrioritized).with_layers(2).with_batch(4);
        let f = build_forward(&cfg).unwrap().graph;
        let g = tutel_partition(&f, 2).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn degree_graphs_cover_feasible_search_space() {
        let f = forward(); // capacity 6: degree 8 is infeasible
        let graphs = tutel_degree_graphs(&f).unwrap();
        let degrees: Vec<usize> = graphs.iter().map(|(d, _)| *d).collect();
        assert_eq!(degrees, vec![1, 2, 4]);
    }

    #[test]
    fn degree_graphs_full_space_with_ample_capacity() {
        let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_layers(2).with_batch(4);
        let f = build_forward(&cfg).unwrap().graph;
        let graphs = tutel_degree_graphs(&f).unwrap();
        assert_eq!(graphs.len(), 4);
        assert_eq!(graphs[3].0, 8);
    }
}
