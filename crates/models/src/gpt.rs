//! GPT-2 MoE graph construction.

use crate::GptMoeConfig;
use lancet_ir::{
    build_backward, BackwardOptions, Graph, IrError, Op, Role, TensorId,
};

/// Per-layer attention K/V activation handles, recorded at graph
/// construction so a decode-serving prefill plan can harvest the cache
/// contents straight out of an executed forward pass.
///
/// The ids address the *unoptimized* graph: passes that renumber tensors
/// (the partition pass) invalidate them, which is why prefill plans are
/// built with `LancetOptions::decode_serving` (partition disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerKv {
    /// Transformer block index.
    pub layer: usize,
    /// Post-projection key activations `(B, S, H)`.
    pub k: TensorId,
    /// Post-projection value activations `(B, S, H)`.
    pub v: TensorId,
}

/// A built model: the graph plus handles to its interesting tensors.
#[derive(Debug, Clone)]
pub struct ModelGraph {
    /// The training (or forward-only) graph.
    pub graph: Graph,
    /// Token-id input `(B, S)`.
    pub ids: TensorId,
    /// Target-id input `(B, S)`.
    pub targets: TensorId,
    /// Scalar loss output.
    pub loss: TensorId,
    /// Per-layer attention K/V handles, in layer order (see [`LayerKv`]).
    pub kv: Vec<LayerKv>,
    /// The configuration the model was built from.
    pub config: GptMoeConfig,
}

/// Builds the forward pass (embedding → blocks → loss).
///
/// # Errors
///
/// Propagates [`IrError`] on inconsistent configuration (e.g. heads not
/// dividing hidden).
///
/// # Example
///
/// ```
/// use lancet_ir::GateKind;
/// use lancet_models::{build_forward, GptMoeConfig};
///
/// let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch);
/// let model = build_forward(&cfg)?;
/// // Six MoE layers → twelve forward all-to-alls.
/// assert_eq!(model.graph.all_to_all_positions().len(), 12);
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn build_forward(cfg: &GptMoeConfig) -> Result<ModelGraph, IrError> {
    let mut g = Graph::new();
    let ids = g.input("ids", vec![cfg.batch, cfg.seq]);
    let targets = g.input("targets", vec![cfg.batch, cfg.seq]);
    let wte = g.weight("wte", vec![cfg.vocab, cfg.hidden]);
    let mut x = g.emit(Op::Embedding, &[wte, ids], Role::Forward)?;

    let mut kv = Vec::with_capacity(cfg.layers);
    for layer in 0..cfg.layers {
        x = transformer_block(&mut g, cfg, layer, x, &mut kv)?;
    }

    // Final norm and LM head.
    let xn = norm(&mut g, cfg, "ln_f", x)?;
    let lm = param(&mut g, cfg, "lm_head".into(), vec![cfg.hidden, cfg.vocab])?;
    let logits = g.emit(Op::MatMul { transpose_b: false }, &[xn, lm], Role::Forward)?;
    let outs = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward)?;
    g.validate()?;
    Ok(ModelGraph { graph: g, ids, targets, loss: outs[0], kv, config: cfg.clone() })
}

/// Builds the full training iteration: forward, backward (with tagged
/// dX/dW instructions) and optional SGD/all-reduce per `opts`.
///
/// # Errors
///
/// Propagates [`IrError`] from graph construction or autodiff.
///
/// # Example
///
/// ```
/// use lancet_ir::{GateKind, Role};
/// use lancet_models::{build_training, GptMoeConfig};
///
/// let cfg = GptMoeConfig::tiny(2, GateKind::Switch);
/// let model = build_training(&cfg, &Default::default())?;
/// let n_dw = model.graph.weight_grad_positions().len();
/// assert!(n_dw > 10, "schedulable dW instructions: {n_dw}");
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn build_training(cfg: &GptMoeConfig, opts: &BackwardOptions) -> Result<ModelGraph, IrError> {
    let mut m = build_forward(cfg)?;
    let _grads = build_backward(&mut m.graph, opts)?;
    Ok(m)
}

/// Declares a replicated parameter, or — under FSDP — a per-device shard
/// plus the all-gather that materializes the full weight before use.
/// Shardable: rank ≥ 2, leading dim divisible by the device count, and
/// large enough to be worth the communication.
fn param(
    g: &mut Graph,
    cfg: &GptMoeConfig,
    name: String,
    shape: Vec<usize>,
) -> Result<TensorId, IrError> {
    let volume: usize = shape.iter().product();
    let shardable = cfg.fsdp
        && shape.len() >= 2
        && shape[0].is_multiple_of(cfg.gpus)
        && volume >= 64
        && !name.contains("expert");
    if shardable {
        let mut shard_shape = shape;
        shard_shape[0] /= cfg.gpus;
        let shard = g.weight(format!("{name}.shard"), shard_shape);
        g.emit(Op::AllGather { gpus: cfg.gpus }, &[shard], Role::Comm)
    } else {
        Ok(g.weight(name, shape))
    }
}

/// Emits the configured normalization (layer norm or RMS norm) for `x`,
/// declaring its parameters under `name` ("h3.ln1", "ln_f", …).
fn norm(
    g: &mut Graph,
    cfg: &GptMoeConfig,
    name: &str,
    x: TensorId,
) -> Result<TensorId, IrError> {
    let h = cfg.hidden;
    let gamma = g.weight(format!("{name}.g"), vec![h]);
    if cfg.rms_norm {
        g.emit(Op::RmsNorm { eps: 1e-5 }, &[x, gamma], Role::Forward)
    } else {
        let beta = g.weight(format!("{name}.b"), vec![h]);
        g.emit(Op::LayerNorm { eps: 1e-5 }, &[x, gamma, beta], Role::Forward)
    }
}

fn transformer_block(
    g: &mut Graph,
    cfg: &GptMoeConfig,
    layer: usize,
    x: TensorId,
    kv: &mut Vec<LayerKv>,
) -> Result<TensorId, IrError> {
    let h = cfg.hidden;
    let pre = |n: &str| format!("h{layer}.{n}");

    // --- Self-attention sub-block ---
    let xn = norm(g, cfg, &pre("ln1"), x)?;
    let wq = param(g, cfg, pre("attn.wq"), vec![h, h])?;
    let bq = g.weight(pre("attn.bq"), vec![h]);
    let wk = param(g, cfg, pre("attn.wk"), vec![h, h])?;
    let bk = g.weight(pre("attn.bk"), vec![h]);
    let wv = param(g, cfg, pre("attn.wv"), vec![h, h])?;
    let bv = g.weight(pre("attn.bv"), vec![h]);
    let q = g.emit(Op::MatMul { transpose_b: false }, &[xn, wq], Role::Forward)?;
    let q = g.emit(Op::BiasAdd, &[q, bq], Role::Forward)?;
    let k = g.emit(Op::MatMul { transpose_b: false }, &[xn, wk], Role::Forward)?;
    let k = g.emit(Op::BiasAdd, &[k, bk], Role::Forward)?;
    let v = g.emit(Op::MatMul { transpose_b: false }, &[xn, wv], Role::Forward)?;
    let v = g.emit(Op::BiasAdd, &[v, bv], Role::Forward)?;
    // Record the K/V handles decode-serving prefill plans harvest.
    kv.push(LayerKv { layer, k, v });
    let scores = g.emit(Op::AttnScores { heads: cfg.heads, causal: true }, &[q, k], Role::Forward)?;
    let probs = g.emit(Op::Softmax, &[scores], Role::Forward)?;
    let probs = g.emit(Op::Dropout { p: cfg.dropout }, &[probs], Role::Forward)?;
    let ctx = g.emit(Op::AttnContext { heads: cfg.heads }, &[probs, v], Role::Forward)?;
    let wo = param(g, cfg, pre("attn.wo"), vec![h, h])?;
    let bo = g.weight(pre("attn.bo"), vec![h]);
    let proj = g.emit(Op::MatMul { transpose_b: false }, &[ctx, wo], Role::Forward)?;
    let proj = g.emit(Op::BiasAdd, &[proj, bo], Role::Forward)?;
    let proj = g.emit(Op::Dropout { p: cfg.dropout }, &[proj], Role::Forward)?;
    let x = g.emit(Op::Add, &[x, proj], Role::Forward)?;

    // --- Feed-forward / MoE sub-block ---
    let xn = norm(g, cfg, &pre("ln2"), x)?;
    let is_moe = cfg.moe_layers().contains(&layer);
    let ffn_out = if is_moe {
        moe_layer(g, cfg, layer, xn)?
    } else {
        dense_ffn(g, cfg, layer, xn)?
    };
    let ffn_out = g.emit(Op::Dropout { p: cfg.dropout }, &[ffn_out], Role::Forward)?;
    g.emit(Op::Add, &[x, ffn_out], Role::Forward)
}

fn dense_ffn(
    g: &mut Graph,
    cfg: &GptMoeConfig,
    layer: usize,
    x: TensorId,
) -> Result<TensorId, IrError> {
    if cfg.swiglu {
        // SwiGLU: (silu(x·W1) ⊙ x·W3)·W2, bias-free (Llama convention).
        let w1 = param(g, cfg, format!("h{layer}.ffn.w1"), vec![cfg.hidden, cfg.ffn])?;
        let w3 = param(g, cfg, format!("h{layer}.ffn.w3"), vec![cfg.hidden, cfg.ffn])?;
        let w2 = param(g, cfg, format!("h{layer}.ffn.w2"), vec![cfg.ffn, cfg.hidden])?;
        let a = g.emit(Op::MatMul { transpose_b: false }, &[x, w1], Role::Forward)?;
        let a = g.emit(Op::Silu, &[a], Role::Forward)?;
        let b = g.emit(Op::MatMul { transpose_b: false }, &[x, w3], Role::Forward)?;
        let gated = g.emit(Op::Mul, &[a, b], Role::Forward)?;
        return g.emit(Op::MatMul { transpose_b: false }, &[gated, w2], Role::Forward);
    }
    let w1 = param(g, cfg, format!("h{layer}.ffn.w1"), vec![cfg.hidden, cfg.ffn])?;
    let b1 = g.weight(format!("h{layer}.ffn.b1"), vec![cfg.ffn]);
    let w2 = param(g, cfg, format!("h{layer}.ffn.w2"), vec![cfg.ffn, cfg.hidden])?;
    let b2 = g.weight(format!("h{layer}.ffn.b2"), vec![cfg.hidden]);
    let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w1], Role::Forward)?;
    let h = g.emit(Op::BiasAdd, &[h, b1], Role::Forward)?;
    let h = g.emit(Op::Gelu, &[h], Role::Forward)?;
    let h = g.emit(Op::MatMul { transpose_b: false }, &[h, w2], Role::Forward)?;
    g.emit(Op::BiasAdd, &[h, b2], Role::Forward)
}

fn moe_layer(
    g: &mut Graph,
    cfg: &GptMoeConfig,
    layer: usize,
    x: TensorId,
) -> Result<TensorId, IrError> {
    let experts = cfg.experts();
    let cap = cfg.capacity();
    let el = cfg.experts_per_gpu;
    let wg = g.weight(format!("h{layer}.moe.gate.w"), vec![cfg.hidden, experts]);
    let w1 = g.weight(format!("h{layer}.moe.expert.w1"), vec![el, cfg.hidden, cfg.ffn]);
    let w2 = g.weight(format!("h{layer}.moe.expert.w2"), vec![el, cfg.ffn, cfg.hidden]);

    let gate = g.emit_multi(
        Op::Gate { kind: cfg.gate, experts, capacity: cap },
        &[x, wg],
        Role::Forward,
    )?;
    let buf = g.emit(
        Op::MoeDispatch { experts, capacity: cap },
        &[x, gate[0], gate[1]],
        Role::Forward,
    )?;
    let buf = g.emit(Op::AllToAll, &[buf], Role::Comm)?;
    // Shared-expert branch (DeepSeek-MoE / PR-MoE style, paper §8
    // discussion): a dense FFN every token passes through, *issued right
    // after the all-to-all launch* so its computation — which has no
    // dependency on the communication — naturally overlaps it.
    let shared = if cfg.shared_expert {
        let w1 = g.weight(format!("h{layer}.moe.shared.w1"), vec![cfg.hidden, cfg.ffn / 2]);
        let w2 = g.weight(format!("h{layer}.moe.shared.w2"), vec![cfg.ffn / 2, cfg.hidden]);
        let s = g.emit(Op::MatMul { transpose_b: false }, &[x, w1], Role::Forward)?;
        let s = g.emit(Op::Gelu, &[s], Role::Forward)?;
        Some(g.emit(Op::MatMul { transpose_b: false }, &[s, w2], Role::Forward)?)
    } else {
        None
    };
    let loc = g.emit(Op::ExpertsLayout { gpus: cfg.gpus }, &[buf], Role::Forward)?;
    let hx = if cfg.swiglu {
        // SwiGLU experts (Mixtral style).
        let w3 = g.weight(format!("h{layer}.moe.expert.w3"), vec![el, cfg.hidden, cfg.ffn]);
        let a = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward)?;
        let a = g.emit(Op::Silu, &[a], Role::Forward)?;
        let b = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w3], Role::Forward)?;
        let gated = g.emit(Op::Mul, &[a, b], Role::Forward)?;
        g.emit(Op::BatchedMatMul { transpose_b: false }, &[gated, w2], Role::Forward)?
    } else {
        let hx = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward)?;
        let hx = g.emit(Op::Gelu, &[hx], Role::Forward)?;
        g.emit(Op::BatchedMatMul { transpose_b: false }, &[hx, w2], Role::Forward)?
    };
    let back = g.emit(Op::ExpertsLayoutInv { gpus: cfg.gpus }, &[hx], Role::Forward)?;
    let back = g.emit(Op::AllToAll, &[back], Role::Comm)?;
    let routed = g.emit(
        Op::MoeGather { experts, capacity: cap, batch: cfg.batch, seq: cfg.seq },
        &[back, gate[0], gate[1]],
        Role::Forward,
    )?;
    match shared {
        Some(s) => g.emit(Op::Add, &[routed, s], Role::Forward),
        None => Ok(routed),
    }
}

/// Forward-region segment ranges, one per transformer block — the
/// checkpoint boundaries used by activation recomputation. Block `i`
/// starts at the instruction consuming its first layer norm's gamma
/// (`h{i}.ln1.g`) and ends where block `i+1` starts (the last block ends
/// at the final layer norm).
pub fn block_boundaries(graph: &Graph) -> Vec<std::ops::Range<usize>> {
    let gamma_of = |name: &str| -> Option<TensorId> {
        graph.tensors().iter().find(|t| t.name == name).map(|t| t.id)
    };
    let first_user = |t: TensorId| -> Option<usize> {
        graph
            .instrs()
            .iter()
            .position(|i| i.inputs.contains(&t))
    };
    let mut starts = Vec::new();
    for layer in 0.. {
        match gamma_of(&format!("h{layer}.ln1.g")).and_then(first_user) {
            Some(p) => starts.push(p),
            None => break,
        }
    }
    let end = gamma_of("ln_f.g")
        .and_then(first_user)
        .unwrap_or(graph.instrs().len());
    let mut segments = Vec::new();
    for (i, &s) in starts.iter().enumerate() {
        let e = starts.get(i + 1).copied().unwrap_or(end);
        if s < e {
            segments.push(s..e);
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::GateKind;

    #[test]
    fn forward_builds_and_validates() {
        let cfg = GptMoeConfig::tiny(2, GateKind::Switch);
        let m = build_forward(&cfg).unwrap();
        assert!(m.graph.validate().is_ok());
        // One MoE layer → two all-to-alls in forward.
        assert_eq!(m.graph.all_to_all_positions().len(), 2);
    }

    #[test]
    fn training_graph_has_backward_alltoalls_and_dws() {
        let cfg = GptMoeConfig::tiny(2, GateKind::Switch);
        let m = build_training(&cfg, &BackwardOptions::default()).unwrap();
        // Forward 2 + backward 2.
        assert_eq!(m.graph.all_to_all_positions().len(), 4);
        // Plenty of schedulable dW instructions.
        assert!(m.graph.weight_grad_positions().len() > 10);
    }

    #[test]
    fn full_size_models_build() {
        for cfg in [
            GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_batch(24),
            GptMoeConfig::gpt2_l_moe(16, GateKind::BatchPrioritized).with_batch(48),
        ] {
            let m = build_training(&cfg, &BackwardOptions::default()).unwrap();
            let n_moe = cfg.moe_layers().len();
            assert_eq!(m.graph.all_to_all_positions().len(), 4 * n_moe);
            assert!(m.graph.validate().is_ok());
        }
    }

    #[test]
    fn parameter_scale_is_plausible() {
        // GPT2-S dense core is ~124 M params; the MoE variant adds expert
        // copies. Sanity-check the order of magnitude (per device).
        let cfg = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch);
        let m = build_forward(&cfg).unwrap();
        let params = m.graph.weight_volume();
        assert!(params > 80_000_000, "params {params}");
        assert!(params < 400_000_000, "params {params}");
    }

    #[test]
    fn sgd_training_emits_updates() {
        let cfg = GptMoeConfig::tiny(1, GateKind::Switch);
        let opts = BackwardOptions { sgd_lr: Some(0.1), optimizer: Default::default(), allreduce_grads: false };
        let m = build_training(&cfg, &opts).unwrap();
        let n_updates = m
            .graph
            .instrs()
            .iter()
            .filter(|i| matches!(i.op, Op::SgdUpdate { .. }))
            .count();
        assert_eq!(n_updates, m.graph.weights().len());
    }

    #[test]
    fn shared_expert_adds_parallel_branch() {
        let plain = GptMoeConfig::tiny(2, GateKind::Switch);
        let shared = plain.clone().with_shared_expert(true);
        let gp = build_forward(&plain).unwrap().graph;
        let gs = build_forward(&shared).unwrap().graph;
        assert!(gs.instrs().len() > gp.instrs().len());
        assert!(gs.weight_volume() > gp.weight_volume());
        assert!(gs.validate().is_ok());
    }

    #[test]
    fn topk_gate_builds_with_scaled_capacity() {
        let cfg = GptMoeConfig::tiny(2, GateKind::TopK { k: 2 });
        let m = build_training(&cfg, &BackwardOptions::default()).unwrap();
        assert!(m.graph.validate().is_ok());
    }

    #[test]
    fn fsdp_shards_large_weights() {
        let cfg = GptMoeConfig::tiny(2, GateKind::Switch).with_fsdp(true);
        let m = build_forward(&cfg).unwrap().graph;
        let n_gather = m
            .instrs()
            .iter()
            .filter(|i| matches!(i.op, Op::AllGather { .. }))
            .count();
        // 2 layers × (4 attention + maybe ffn) — at least the attention
        // projections of both blocks are sharded.
        assert!(n_gather >= 8, "expected ≥8 all-gathers, got {n_gather}");
        // Shards hold 1/G of the parameter.
        let shard = m.tensors().iter().find(|t| t.name.ends_with(".shard")).unwrap();
        assert_eq!(shard.shape.dim(0), cfg.hidden / 2);
        // Backward mirrors with reduce-scatters.
        let mut t = m.clone();
        lancet_ir::build_backward(&mut t, &BackwardOptions::default()).unwrap();
        let n_rs = t
            .instrs()
            .iter()
            .filter(|i| matches!(i.op, Op::ReduceScatter { .. }))
            .count();
        assert_eq!(n_rs, n_gather);
    }

    #[test]
    fn block_boundaries_tile_the_blocks() {
        let cfg = GptMoeConfig::tiny(2, GateKind::Switch).with_layers(3);
        let m = build_forward(&cfg).unwrap().graph;
        let segs = block_boundaries(&m);
        assert_eq!(segs.len(), 3);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Each segment contains at least a dozen instructions (attention
        // plus FFN or MoE).
        for s in &segs {
            assert!(s.len() >= 12, "{s:?}");
        }
    }

    #[test]
    fn mixtral_style_builds_and_validates() {
        let cfg = GptMoeConfig::mixtral_tiny(2);
        let m = build_training(&cfg, &BackwardOptions::default()).unwrap();
        assert!(m.graph.validate().is_ok());
        // Every layer is MoE → 4 forward + 4 backward a2as at 2 layers.
        assert_eq!(m.graph.all_to_all_positions().len(), 8);
        // RMS norms and SiLU present; no layer norms.
        assert!(m.graph.instrs().iter().any(|i| matches!(i.op, Op::RmsNorm { .. })));
        assert!(m.graph.instrs().iter().any(|i| matches!(i.op, Op::Silu)));
        assert!(!m.graph.instrs().iter().any(|i| matches!(i.op, Op::LayerNorm { .. })));
    }

    #[test]
    fn bpr_gate_builds() {
        let cfg = GptMoeConfig::tiny(2, GateKind::BatchPrioritized);
        assert!(build_training(&cfg, &BackwardOptions::default()).is_ok());
    }
}
