//! Model configuration.

use lancet_ir::GateKind;

/// Configuration of a GPT-2-with-MoE benchmark model.
#[derive(Debug, Clone, PartialEq)]
pub struct GptMoeConfig {
    /// Display name ("GPT2-S-MoE").
    pub name: String,
    /// Number of Transformer blocks.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner dimension (dense and expert FFNs).
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Per-GPU batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Number of GPUs (= number of expert-parallel ranks).
    pub gpus: usize,
    /// Experts hosted per GPU (paper: always 2).
    pub experts_per_gpu: usize,
    /// GShard-style capacity factor.
    pub capacity_factor: f64,
    /// Gating algorithm.
    pub gate: GateKind,
    /// An MoE layer replaces the FFN of every block whose index is odd
    /// (i.e. every `moe_every`-th block, paper: 2).
    pub moe_every: usize,
    /// Dropout probability carried on dropout ops (identity at exec time).
    pub dropout: f32,
    /// Add a DeepSeek/PR-MoE-style *shared expert*: a dense FFN branch
    /// every token passes through, summed with the routed-expert output.
    /// Its computation has no dependency on the all-to-all, so it overlaps
    /// naturally — the architecture the paper's §8 discussion highlights.
    pub shared_expert: bool,
    /// Shard the large replicated weights FSDP/ZeRO-3 style: each device
    /// stores `1/G` of the parameter and an all-gather materializes it
    /// before use (paper §8: "FSDP/ZeRO3 inserts additional all-gather
    /// communication in the forward passes, which may require additional
    /// scheduling").
    pub fsdp: bool,
    /// Use RMS normalization instead of layer norm (Llama/Mixtral style).
    pub rms_norm: bool,
    /// Use SwiGLU feed-forward blocks (gated SiLU) instead of GELU MLPs,
    /// in both dense FFNs and experts (Mixtral style).
    pub swiglu: bool,
}

impl GptMoeConfig {
    /// The paper's smaller benchmark model: 12 layers, hidden 768.
    ///
    /// Per-GPU batch sizes follow the paper: 24 on A100, 16 on V100 — set
    /// via [`GptMoeConfig::with_batch`].
    pub fn gpt2_s_moe(gpus: usize, gate: GateKind) -> Self {
        GptMoeConfig {
            name: "GPT2-S-MoE".into(),
            layers: 12,
            hidden: 768,
            heads: 12,
            ffn: 4 * 768,
            vocab: 50257,
            batch: 16,
            seq: 512,
            gpus,
            experts_per_gpu: 2,
            capacity_factor: 1.25,
            gate,
            moe_every: 2,
            dropout: 0.1,
            shared_expert: false,
            fsdp: false,
            rms_norm: false,
            swiglu: false,
        }
    }

    /// The paper's larger benchmark model: 24 layers, hidden 1024.
    pub fn gpt2_l_moe(gpus: usize, gate: GateKind) -> Self {
        GptMoeConfig {
            name: "GPT2-L-MoE".into(),
            layers: 24,
            hidden: 1024,
            heads: 16,
            ffn: 4 * 1024,
            vocab: 50257,
            batch: 8,
            seq: 512,
            gpus,
            experts_per_gpu: 2,
            capacity_factor: 1.25,
            gate,
            moe_every: 2,
            dropout: 0.1,
            shared_expert: false,
            fsdp: false,
            rms_norm: false,
            swiglu: false,
        }
    }

    /// A miniature configuration small enough for the numerical executor
    /// (used by equivalence and gradient tests).
    pub fn tiny(gpus: usize, gate: GateKind) -> Self {
        GptMoeConfig {
            name: "Tiny-MoE".into(),
            layers: 2,
            hidden: 8,
            heads: 2,
            ffn: 16,
            vocab: 11,
            batch: 2,
            seq: 4,
            gpus,
            experts_per_gpu: 2,
            capacity_factor: 1.5,
            gate,
            moe_every: 2,
            dropout: 0.0,
            shared_expert: false,
            fsdp: false,
            rms_norm: false,
            swiglu: false,
        }
    }

    /// Overrides the per-GPU batch size (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Overrides the layer count (builder style), e.g. for the Fig. 6
    /// partition-range sweeps.
    pub fn with_layers(mut self, layers: usize) -> Self {
        self.layers = layers;
        self
    }

    /// Overrides the sequence length (builder style), e.g. for
    /// serving-scaled replicas of the paper models.
    pub fn with_seq(mut self, seq: usize) -> Self {
        self.seq = seq;
        self
    }

    /// Overrides the vocabulary size (builder style). Serving benchmarks
    /// shrink the vocabulary so the LM head fits a CPU executor budget.
    pub fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Overrides the GShard capacity factor (builder style). A serving
    /// runtime sets this to the expert count, which makes every expert
    /// able to absorb every token: routing becomes drop-free, so a
    /// token's output is independent of what else shares its micro-batch
    /// (the transparent-batching contract in `lancet-serve`).
    pub fn with_capacity_factor(mut self, factor: f64) -> Self {
        self.capacity_factor = factor;
        self
    }

    /// Overrides the gate (builder style).
    pub fn with_gate(mut self, gate: GateKind) -> Self {
        self.gate = gate;
        self
    }

    /// Enables the shared-expert branch (builder style).
    pub fn with_shared_expert(mut self, enabled: bool) -> Self {
        self.shared_expert = enabled;
        self
    }

    /// Enables FSDP-style weight sharding (builder style).
    pub fn with_fsdp(mut self, enabled: bool) -> Self {
        self.fsdp = enabled;
        self
    }

    /// A Mixtral-style model (paper §8 names Mixtral as a target
    /// architecture): every block's FFN is an MoE layer, top-2 routing,
    /// RMS normalization, SwiGLU experts.
    pub fn mixtral_moe(gpus: usize) -> Self {
        let mut cfg = GptMoeConfig::gpt2_s_moe(gpus, GateKind::TopK { k: 2 });
        cfg.name = "Mixtral-S-MoE".into();
        cfg.moe_every = 1;
        cfg.rms_norm = true;
        cfg.swiglu = true;
        cfg
    }

    /// A tiny Mixtral-style configuration for the numerical executor.
    pub fn mixtral_tiny(gpus: usize) -> Self {
        let mut cfg = GptMoeConfig::tiny(gpus, GateKind::TopK { k: 2 });
        cfg.name = "Mixtral-Tiny".into();
        cfg.moe_every = 1;
        cfg.rms_norm = true;
        cfg.swiglu = true;
        cfg
    }

    /// Total number of experts across the cluster.
    pub fn experts(&self) -> usize {
        self.gpus * self.experts_per_gpu
    }

    /// Tokens processed per GPU per iteration.
    pub fn tokens(&self) -> usize {
        self.batch * self.seq
    }

    /// Per-expert capacity `C` (tokens per device, GShard convention —
    /// scaled by `k` for top-k gates since every token claims `k` slots).
    pub fn capacity(&self) -> usize {
        let slots = self.tokens() * self.gate.k();
        ((self.capacity_factor * slots as f64) / self.experts() as f64).ceil() as usize
    }

    /// Indices of the blocks whose FFN is an MoE layer (every block when
    /// `moe_every == 1`, every other block — the odd ones — when 2).
    pub fn moe_layers(&self) -> Vec<usize> {
        (0..self.layers)
            .filter(|i| i % self.moe_every == self.moe_every.saturating_sub(1).min(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_shapes() {
        let s = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch);
        assert_eq!(s.layers, 12);
        assert_eq!(s.hidden, 768);
        assert_eq!(s.experts(), 32);
        assert_eq!(s.moe_layers().len(), 6);
        let l = GptMoeConfig::gpt2_l_moe(16, GateKind::Switch);
        assert_eq!(l.layers, 24);
        assert_eq!(l.hidden, 1024);
        assert_eq!(l.moe_layers().len(), 12);
    }

    #[test]
    fn capacity_follows_gshard_formula() {
        let c = GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_batch(16);
        // 16×512 = 8192 tokens, 32 experts, factor 1.25 → 320.
        assert_eq!(c.capacity(), 320);
        // Top-2 doubles the slot demand and hence the capacity.
        let c2 = c.with_gate(GateKind::TopK { k: 2 });
        assert_eq!(c2.capacity(), 640);
    }

    #[test]
    fn builders_override() {
        let c = GptMoeConfig::gpt2_s_moe(8, GateKind::Switch)
            .with_batch(24)
            .with_layers(6)
            .with_gate(GateKind::BatchPrioritized);
        assert_eq!(c.batch, 24);
        assert_eq!(c.layers, 6);
        assert_eq!(c.gate, GateKind::BatchPrioritized);
    }

    #[test]
    fn moe_layers_are_odd_blocks() {
        let c = GptMoeConfig::tiny(2, GateKind::Switch);
        assert_eq!(c.moe_layers(), vec![1]);
    }

    #[test]
    fn mixtral_preset_is_every_layer_top2() {
        let c = GptMoeConfig::mixtral_moe(16);
        assert_eq!(c.moe_every, 1);
        assert_eq!(c.gate, GateKind::TopK { k: 2 });
        assert!(c.rms_norm && c.swiglu);
        assert_eq!(c.moe_layers().len(), c.layers);
    }
}
