//! GPT-2 MoE benchmark models (paper §7, "Benchmark Models and Datasets").
//!
//! The paper evaluates MoE variants of GPT-2 built by replacing every
//! other Transformer block's feed-forward layer with an MoE layer:
//!
//! * **GPT2-S-MoE** — 12 layers, hidden 768;
//! * **GPT2-L-MoE** — 24 layers, hidden 1024;
//!
//! with 2 experts per GPU (experts scale with cluster size), sequence
//! length 512, Switch or Batch-Prioritized gating, and SGD training.
//!
//! [`build_training`] emits the complete training-iteration IR — forward,
//! loss, autodiff backward with tagged dX/dW instructions, and optional
//! SGD updates — ready for the Lancet passes, the simulator, and (at tiny
//! configurations) the numerical executor.
//!
//! Deviations from the exact HuggingFace GPT-2 (documented in DESIGN.md):
//! no learned positional embedding and no per-expert bias terms; neither
//! affects the operator mix that drives scheduling decisions.

mod config;
mod gpt;

pub use config::GptMoeConfig;
pub use gpt::{block_boundaries, build_forward, build_training, LayerKv, ModelGraph};
