//! Graphviz (DOT) export for visual inspection of training graphs.

use crate::{Graph, Role};
use std::fmt::Write as _;

/// Renders the instruction dependency structure as a DOT digraph.
///
/// Node colors encode the instruction [`Role`]: forward (white), dX
/// (lightyellow), dW (lightblue), comm (lightgreen), optimizer (gray).
///
/// # Example
///
/// ```
/// use lancet_ir::{to_dot, Graph, Op, Role};
///
/// let mut g = Graph::new();
/// let x = g.input("x", vec![2, 2]);
/// let _y = g.emit(Op::Relu, &[x], Role::Forward)?;
/// let dot = to_dot(&g);
/// assert!(dot.starts_with("digraph lancet"));
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::from("digraph lancet {\n  rankdir=TB;\n  node [shape=box, style=filled];\n");
    for (pos, instr) in g.instrs().iter().enumerate() {
        let color = match instr.role {
            Role::Forward => "white",
            Role::ActGrad => "lightyellow",
            Role::WeightGrad => "lightblue",
            Role::Comm => "lightgreen",
            Role::Optimizer => "lightgray",
        };
        let _ = writeln!(
            out,
            "  n{pos} [label=\"[{pos}] {}\", fillcolor={color}];",
            instr.op.name()
        );
    }
    let producers = g.producer_positions();
    for (pos, instr) in g.instrs().iter().enumerate() {
        for &t in &instr.inputs {
            if let Some(&p) = producers.get(&t) {
                let _ = writeln!(out, "  n{p} -> n{pos};");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Graph::new();
        let x = g.input("x", vec![2, 2]);
        let y = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        let _z = g.emit(Op::Gelu, &[y], Role::Forward).unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("n0 [label=\"[0] relu\""));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_colors_roles() {
        let mut g = Graph::new();
        let x = g.input("x", vec![4, 4, 4]);
        let _c = g.emit(Op::AllToAll, &[x], Role::Comm).unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("lightgreen"));
    }
}
