//! Identifier and classification types shared across the IR.

use std::fmt;

/// Identifies a tensor within a [`Graph`](crate::Graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub u32);

/// Identifies an instruction within a [`Graph`](crate::Graph).
///
/// Instruction ids are stable across reordering: they name the instruction,
/// not its position in the sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId(pub u32);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// How a tensor is produced / what it stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Model input supplied per iteration (tokens, targets).
    Input,
    /// Trainable parameter, replicated (or expert-local) per device.
    Weight,
    /// Intermediate activation produced by an instruction.
    Activation,
    /// Activation gradient (dX) produced during backward.
    Gradient,
    /// Weight gradient (dW) produced during backward.
    WeightGrad,
}

/// Classifies an instruction's position in the training iteration.
///
/// The Lancet dW-scheduling pass (paper §4) keys off [`Role::WeightGrad`]:
/// these are the instructions that have no dependency on earlier-layer
/// all-to-alls and can be moved to overlap them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Forward-pass computation.
    Forward,
    /// Backward-pass activation-gradient computation (dX); on the critical
    /// path of back-propagation.
    ActGrad,
    /// Backward-pass weight-gradient computation (dW); off the critical
    /// path, schedulable against all-to-alls.
    WeightGrad,
    /// Communication (all-to-all, all-reduce).
    Comm,
    /// Optimizer update.
    Optimizer,
}

impl Role {
    /// True for the dW instructions the scheduling pass may move.
    pub fn is_weight_grad(self) -> bool {
        matches!(self, Role::WeightGrad)
    }
}

/// The gating (routing) algorithm of an MoE layer.
///
/// The choice of gate constrains the operator-partition pass (paper §5.1,
/// Fig. 4): gates whose routing decision depends on global batch statistics
/// cannot have the batch split *before* the MoE layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Switch-style top-1 routing (Fedus et al.): per-token argmax of the
    /// gating scores. Decidable from partial batches.
    Switch,
    /// GShard-style top-k routing (Lepikhin et al.): each token is sent to
    /// its `k` highest-scoring experts with combine weights normalized
    /// over the chosen set. Decidable from partial batches.
    TopK {
        /// Experts chosen per token (k ≥ 1).
        k: usize,
    },
    /// Batch-prioritized routing (Riquelme et al.): tokens are sorted by
    /// importance score over the whole batch before capacity is applied,
    /// so partial batches change the drop set.
    BatchPrioritized,
    /// Uniform-random expert assignment (THOR-style). Decidable per token.
    Random,
    /// Hash-based assignment (Roller et al.). Decidable per token.
    Hash,
    /// Expert-choice routing (Zhou et al.): experts pick their top tokens
    /// over the whole batch; not decidable from partial batches.
    ExpertChoice,
}

impl GateKind {
    /// Whether the routing decision of a *partial* batch equals its routing
    /// decision within the full batch, i.e. whether computation *before*
    /// the MoE layer may be batch-partitioned (paper Fig. 4d vs 4c).
    pub fn partitionable_before_moe(self) -> bool {
        match self {
            GateKind::Switch | GateKind::TopK { .. } | GateKind::Random | GateKind::Hash => true,
            GateKind::BatchPrioritized | GateKind::ExpertChoice => false,
        }
    }

    /// Number of experts each token is routed to.
    pub fn k(self) -> usize {
        match self {
            GateKind::TopK { k } => k.max(1),
            _ => 1,
        }
    }

    /// Whether combine weights are normalized over the chosen experts
    /// (GShard top-k) rather than raw softmax probabilities (Switch).
    pub fn normalizes_scales(self) -> bool {
        matches!(self, GateKind::TopK { .. })
    }

    /// Short human-readable name used in figures and traces.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Switch => "switch",
            GateKind::TopK { .. } => "topk",
            GateKind::BatchPrioritized => "bpr",
            GateKind::Random => "random",
            GateKind::Hash => "hash",
            GateKind::ExpertChoice => "expert-choice",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_properties() {
        let g = GateKind::TopK { k: 2 };
        assert_eq!(g.k(), 2);
        assert!(g.partitionable_before_moe());
        assert!(g.normalizes_scales());
        assert_eq!(GateKind::Switch.k(), 1);
        assert!(!GateKind::Switch.normalizes_scales());
        assert_eq!(GateKind::TopK { k: 0 }.k(), 1);
    }

    #[test]
    fn gate_partitionability_matches_paper() {
        assert!(GateKind::Switch.partitionable_before_moe());
        assert!(GateKind::Random.partitionable_before_moe());
        assert!(GateKind::Hash.partitionable_before_moe());
        assert!(!GateKind::BatchPrioritized.partitionable_before_moe());
        assert!(!GateKind::ExpertChoice.partitionable_before_moe());
    }

    #[test]
    fn display_ids() {
        assert_eq!(TensorId(3).to_string(), "%3");
        assert_eq!(InstrId(7).to_string(), "@7");
        assert_eq!(GateKind::Switch.to_string(), "switch");
    }

    #[test]
    fn role_weight_grad_flag() {
        assert!(Role::WeightGrad.is_weight_grad());
        assert!(!Role::ActGrad.is_weight_grad());
        assert!(!Role::Comm.is_weight_grad());
    }
}
