use crate::{InstrId, TensorId};
use std::fmt;

/// Errors produced by IR construction, validation, and transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Operator received the wrong number of inputs.
    ArityMismatch {
        /// Operator name.
        op: &'static str,
        /// Number of inputs the operator requires.
        expected: usize,
        /// Number of inputs provided.
        actual: usize,
    },
    /// Operator inputs have incompatible shapes.
    ShapeMismatch {
        /// Operator name.
        op: &'static str,
        /// Debug rendering of the offending input shapes.
        detail: String,
    },
    /// A tensor id is not defined in the graph.
    UnknownTensor(TensorId),
    /// An instruction id is not defined in the graph.
    UnknownInstr(InstrId),
    /// A tensor is consumed before the instruction that produces it.
    UseBeforeDef {
        /// The consuming instruction.
        instr: InstrId,
        /// The tensor consumed too early.
        tensor: TensorId,
    },
    /// A tensor is produced by more than one instruction.
    MultipleProducers(TensorId),
    /// Autodiff does not know how to differentiate an operator.
    NonDifferentiable(&'static str),
    /// A requested transformation is invalid.
    InvalidTransform(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ArityMismatch { op, expected, actual } => {
                write!(f, "{op} expects {expected} inputs, got {actual}")
            }
            IrError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in {op}: {detail}")
            }
            IrError::UnknownTensor(t) => write!(f, "unknown tensor {t}"),
            IrError::UnknownInstr(i) => write!(f, "unknown instruction {i}"),
            IrError::UseBeforeDef { instr, tensor } => {
                write!(f, "instruction {instr} uses {tensor} before its definition")
            }
            IrError::MultipleProducers(t) => write!(f, "tensor {t} has multiple producers"),
            IrError::NonDifferentiable(op) => write!(f, "operator {op} is not differentiable"),
            IrError::InvalidTransform(msg) => write!(f, "invalid transform: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}
