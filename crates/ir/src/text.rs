//! Human-readable textual dump of a training graph.
//!
//! One line per instruction in program order:
//!
//! ```text
//! [ 12] F  %34(24,512,768) = matmul(%30, %w.h0.attn.wq)
//! [ 13] C  %41(64,320,768) = all_to_all(%40)
//! ```
//!
//! Role letters: `F` forward, `X` activation grad, `W` weight grad,
//! `C` communication, `O` optimizer.

use crate::{Graph, Role, TensorId};
use std::fmt::Write as _;

fn role_letter(role: Role) -> char {
    match role {
        Role::Forward => 'F',
        Role::ActGrad => 'X',
        Role::WeightGrad => 'W',
        Role::Comm => 'C',
        Role::Optimizer => 'O',
    }
}

fn tensor_ref(g: &Graph, t: TensorId) -> String {
    let def = g.tensor(t);
    match def.kind {
        crate::TensorKind::Weight => format!("%w.{}", def.name),
        crate::TensorKind::Input => format!("%in.{}", def.name),
        _ => format!("%{}", t.0),
    }
}

/// Renders the instruction sequence as text (see module docs).
///
/// # Example
///
/// ```
/// use lancet_ir::{to_text, Graph, Op, Role};
///
/// let mut g = Graph::new();
/// let x = g.input("x", vec![2, 2]);
/// let _y = g.emit(Op::Relu, &[x], Role::Forward)?;
/// let text = to_text(&g);
/// assert!(text.contains("relu(%in.x)"));
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn to_text(g: &Graph) -> String {
    let mut out = String::new();
    let width = g.instrs().len().to_string().len().max(3);
    for (pos, instr) in g.instrs().iter().enumerate() {
        let _ = write!(out, "[{pos:>width$}] {}  ", role_letter(instr.role));
        for (i, &o) in instr.outputs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}{}", tensor_ref(g, o), g.tensor(o).shape);
        }
        let _ = write!(out, " = {}(", instr.op.name());
        for (i, &t) in instr.inputs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&tensor_ref(g, t));
        }
        out.push_str(")\n");
    }
    out
}

/// Summarizes the graph: instruction count by role and all-to-all count.
///
/// # Example
///
/// ```
/// use lancet_ir::{summarize, Graph, Op, Role};
///
/// let mut g = Graph::new();
/// let x = g.input("x", vec![4, 4, 4]);
/// let _ = g.emit(Op::AllToAll, &[x], Role::Comm)?;
/// assert!(summarize(&g).contains("all-to-alls: 1"));
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn summarize(g: &Graph) -> String {
    let mut counts = [0usize; 5];
    for i in g.instrs() {
        counts[match i.role {
            Role::Forward => 0,
            Role::ActGrad => 1,
            Role::WeightGrad => 2,
            Role::Comm => 3,
            Role::Optimizer => 4,
        }] += 1;
    }
    format!(
        "{} instructions (forward {}, dX {}, dW {}, comm {}, optimizer {}); \
         {} tensors; {} weight elements; all-to-alls: {}",
        g.instrs().len(),
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4],
        g.num_tensors(),
        g.weight_volume(),
        g.all_to_all_positions().len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let x = g.input("tokens", vec![2, 4]);
        let w = g.weight("embed", vec![8, 4]);
        let y = g.emit(Op::Embedding, &[w, x], Role::Forward).unwrap();
        let _z = g.emit(Op::Relu, &[y], Role::Forward).unwrap();
        g
    }

    #[test]
    fn text_lists_every_instruction() {
        let g = sample();
        let text = to_text(&g);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("embedding(%w.embed, %in.tokens)"));
        assert!(text.contains("(2, 4, 4)"));
        assert!(text.starts_with("[  0] F"));
    }

    #[test]
    fn summary_counts() {
        let g = sample();
        let s = summarize(&g);
        assert!(s.contains("2 instructions"));
        assert!(s.contains("forward 2"));
        assert!(s.contains("all-to-alls: 0"));
    }
}
