//! Dead-code elimination over instruction sequences.

use crate::{Graph, Op, Result, Role, TensorId};
use std::collections::HashSet;

/// Removes instructions that contribute to neither the given root
/// tensors, nor any optimizer update, nor the loss. Returns the number of
/// instructions removed.
///
/// Collectives are eliminated like any other instruction when dead: every
/// device executes the same (rewritten) program, so no rank can be left
/// waiting on a removed collective.
///
/// # Errors
///
/// Propagates validation failures (would indicate an invariant bug — the
/// surviving subsequence of a valid program is always valid).
///
/// # Example
///
/// ```
/// use lancet_ir::{eliminate_dead_code, Graph, Op, Role};
///
/// let mut g = Graph::new();
/// let x = g.input("x", vec![2, 2]);
/// let live = g.emit(Op::Relu, &[x], Role::Forward)?;
/// let _dead = g.emit(Op::Gelu, &[x], Role::Forward)?;
/// let removed = eliminate_dead_code(&mut g, &[live])?;
/// assert_eq!(removed, 1);
/// assert_eq!(g.instrs().len(), 1);
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn eliminate_dead_code(graph: &mut Graph, roots: &[TensorId]) -> Result<usize> {
    let producers = graph.producer_positions();
    let mut live_instrs: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = Vec::new();

    // Seed: roots' producers, optimizer updates, and the loss.
    for &t in roots {
        if let Some(&p) = producers.get(&t) {
            stack.push(p);
        }
    }
    for (pos, instr) in graph.instrs().iter().enumerate() {
        if instr.role == Role::Optimizer || matches!(instr.op, Op::CrossEntropy) {
            stack.push(pos);
        }
    }
    while let Some(pos) = stack.pop() {
        if !live_instrs.insert(pos) {
            continue;
        }
        for &t in &graph.instrs()[pos].inputs {
            if let Some(&p) = producers.get(&t) {
                stack.push(p);
            }
        }
    }

    let removed = graph.instrs().len() - live_instrs.len();
    if removed == 0 {
        return Ok(0);
    }
    let order: Vec<crate::InstrId> = graph
        .instrs()
        .iter()
        .enumerate()
        .filter(|(pos, _)| live_instrs.contains(pos))
        .map(|(_, i)| i.id)
        .collect();
    graph.retain_instrs(&order)?;
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_live_chain_drops_dead_branch() {
        let mut g = Graph::new();
        let x = g.input("x", vec![2, 2]);
        let a = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        let b = g.emit(Op::Gelu, &[a], Role::Forward).unwrap();
        let _dead1 = g.emit(Op::Softmax, &[a], Role::Forward).unwrap();
        let _dead2 = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        let removed = eliminate_dead_code(&mut g, &[b]).unwrap();
        assert_eq!(removed, 2);
        assert!(g.validate().is_ok());
        assert_eq!(g.instrs().len(), 2);
    }

    #[test]
    fn optimizer_updates_are_roots() {
        let mut g = Graph::new();
        let w = g.weight("w", vec![2]);
        let dw = g.input("dw", vec![2]);
        let _upd = g.emit(Op::SgdUpdate { lr: 0.1 }, &[w, dw], Role::Optimizer).unwrap();
        let removed = eliminate_dead_code(&mut g, &[]).unwrap();
        assert_eq!(removed, 0);
    }

    #[test]
    fn loss_is_a_root() {
        let mut g = Graph::new();
        let logits = g.input("logits", vec![1, 2, 4]);
        let targets = g.input("targets", vec![1, 2]);
        let pre = g.emit(Op::Gelu, &[logits], Role::Forward).unwrap();
        let _ = g.emit_multi(Op::CrossEntropy, &[pre, targets], Role::Forward).unwrap();
        let removed = eliminate_dead_code(&mut g, &[]).unwrap();
        assert_eq!(removed, 0);
        assert_eq!(g.instrs().len(), 2);
    }

    #[test]
    fn everything_dead_without_roots() {
        let mut g = Graph::new();
        let x = g.input("x", vec![2]);
        let _a = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        let removed = eliminate_dead_code(&mut g, &[]).unwrap();
        assert_eq!(removed, 1);
        assert!(g.instrs().is_empty());
    }
}
