//! Training-graph intermediate representation for the Lancet reproduction.
//!
//! The IR models a training iteration as a *sequence of instructions*
//! ([`Instr`]) over statically shaped tensors ([`TensorDef`]), exactly as in
//! the paper (§4): program order is execution-issue order on a device's
//! streams, and the Lancet passes transform the sequence (reordering dW
//! instructions, partitioning forward operators).
//!
//! Main pieces:
//!
//! * [`Op`] — the operator set: dense Transformer compute, fused attention,
//!   MoE gating/dispatch/gather (including the irregular, capacity-passing
//!   partitioned variants of paper Fig. 5c), and collectives.
//! * [`Graph`] — tensor definitions plus the instruction sequence, with
//!   validation, producer/user maps, and builder helpers.
//! * [`DepGraph`] — dependency edges and reachability queries used by the
//!   dW-labelling analysis (paper §4.1).
//! * [`autodiff`] — reverse-mode differentiation that emits explicit
//!   activation-gradient (dX) and weight-gradient (dW) instructions with
//!   [`Role`] tags, giving the scheduling pass its raw material.
//!
//! # Example
//!
//! ```
//! use lancet_ir::{Graph, Op, Role};
//!
//! let mut g = Graph::new();
//! let x = g.input("x", vec![4, 8]);
//! let w = g.weight("w", vec![8, 2]);
//! let y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward)?;
//! assert_eq!(g.tensor(y).shape.dims(), &[4, 2]);
//! assert!(g.validate().is_ok());
//! # Ok::<(), lancet_ir::IrError>(())
//! ```

mod autodiff;
mod dce;
mod dep;
mod dot;
mod error;
mod graph;
mod op;
mod text;
mod types;

pub use autodiff::{build_backward, BackwardOptions, Optimizer};
pub use dce::eliminate_dead_code;
pub use dep::DepGraph;
pub use dot::to_dot;
pub use error::IrError;
pub use graph::{Graph, Instr, TensorDef};
pub use op::Op;
pub use text::{summarize, to_text};
pub use types::{GateKind, InstrId, Role, TensorId, TensorKind};

pub use lancet_tensor::Shape;

/// Result alias for fallible IR operations.
pub type Result<T> = std::result::Result<T, IrError>;
