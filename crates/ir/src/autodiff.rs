//! Reverse-mode differentiation of forward graphs.
//!
//! `build_backward` walks the forward instruction sequence in reverse and
//! emits explicit gradient instructions, tagging activation gradients as
//! [`Role::ActGrad`], weight gradients as [`Role::WeightGrad`] and
//! collective gradients as [`Role::Comm`]. The emitted order mirrors what
//! an eager framework produces (dX and dW interleaved per layer), which is
//! precisely the *unoptimized* baseline the Lancet dW-scheduling pass then
//! improves.

use crate::{Graph, Instr, IrError, Op, Result, Role, TensorId, TensorKind};
use std::collections::HashMap;

/// Which parameter-update rule the backward builder appends.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Optimizer {
    /// No update instructions (gradients only).
    #[default]
    None,
    /// Plain SGD.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with heavy-ball momentum — the paper's training setup.
    SgdMomentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
    },
    /// Adam without bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Denominator stabilizer.
        eps: f32,
    },
}

/// Options controlling backward-graph construction.
#[derive(Debug, Clone, Default)]
pub struct BackwardOptions {
    /// When set, emit an SGD update instruction per weight with this
    /// learning rate. Shorthand for `optimizer = Sgd`; ignored when
    /// `optimizer` is set explicitly.
    pub sgd_lr: Option<f32>,
    /// Parameter-update rule to append (optimizer state tensors are
    /// declared as weights named `opt.<kind>.<weight>`; bind them to
    /// zeros on the first iteration).
    pub optimizer: Optimizer,
    /// Emit a gradient all-reduce for every *replicated* weight (weights
    /// whose name does not contain `"expert"`; expert weights are sharded
    /// and must not be synchronized).
    pub allreduce_grads: bool,
}

impl BackwardOptions {
    fn effective_optimizer(&self) -> Optimizer {
        match (self.optimizer, self.sgd_lr) {
            (Optimizer::None, Some(lr)) => Optimizer::Sgd { lr },
            (opt, _) => opt,
        }
    }
}

/// Emits the backward pass for `g`, which must contain exactly one
/// [`Op::CrossEntropy`] instruction providing the scalar loss.
///
/// Returns the map from weight tensor to its gradient tensor.
///
/// # Errors
///
/// Returns [`IrError::NonDifferentiable`] if the forward graph contains an
/// operator without a gradient rule on a differentiable path, or
/// [`IrError::InvalidTransform`] if no loss instruction is found.
///
/// # Example
///
/// ```
/// use lancet_ir::{build_backward, Graph, Op, Role};
///
/// let mut g = Graph::new();
/// let x = g.input("logits", vec![1, 2, 4]);
/// let t = g.input("targets", vec![1, 2]);
/// let w = g.weight("w", vec![4, 4]);
/// let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward)?;
/// let _ = g.emit_multi(Op::CrossEntropy, &[h, t], Role::Forward)?;
/// let grads = build_backward(&mut g, &Default::default())?;
/// assert!(grads.contains_key(&w));
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn build_backward(g: &mut Graph, opts: &BackwardOptions) -> Result<HashMap<TensorId, TensorId>> {
    let forward: Vec<Instr> = g.instrs().to_vec();
    let loss_instr = forward
        .iter()
        .rev()
        .find(|i| matches!(i.op, Op::CrossEntropy))
        .cloned()
        .ok_or_else(|| IrError::InvalidTransform("no CrossEntropy loss in graph".into()))?;

    let mut grads: HashMap<TensorId, TensorId> = HashMap::new();
    // Seed: d(loss)/d(logits) from the stored probabilities.
    let probs = loss_instr.outputs[1];
    let targets = loss_instr.inputs[1];
    let logits = loss_instr.inputs[0];
    let dlogits = g.emit(Op::CrossEntropyGrad, &[probs, targets], Role::ActGrad)?;
    grads.insert(logits, dlogits);

    for instr in forward.iter().rev() {
        if matches!(instr.op, Op::CrossEntropy) {
            continue;
        }
        emit_vjp(g, instr, &mut grads)?;
    }

    // Collect weight gradients, optionally synchronize and apply updates.
    // Iterate weights in *reverse* definition order ≈ gradient-completion
    // order (backward reaches late-defined weights first), so collectives
    // issued on a communication stream don't head-of-line block behind
    // the embedding's gradient — the classic DDP bucketing order.
    let producers = g.producer_positions();
    let mut weight_grads = HashMap::new();
    for w in g.weights().into_iter().rev() {
        if let Some(&dw) = grads.get(&w) {
            let mut dw = dw;
            let is_expert = g.tensor(w).name.contains("expert");
            // FSDP shard gradients arrive via reduce-scatter, which
            // already sums across devices — all-reducing them again
            // would double-count.
            let already_synced = producers
                .get(&dw)
                .is_some_and(|&p| matches!(g.instrs()[p].op, Op::ReduceScatter { .. }));
            if opts.allreduce_grads && !is_expert && !already_synced {
                dw = g.emit(Op::AllReduce, &[dw], Role::Comm)?;
            }
            match opts.effective_optimizer() {
                Optimizer::None => {}
                Optimizer::Sgd { lr } => {
                    let _ = g.emit(Op::SgdUpdate { lr }, &[w, dw], Role::Optimizer)?;
                }
                Optimizer::SgdMomentum { lr, momentum } => {
                    let name = g.tensor(w).name.clone();
                    let shape = g.tensor(w).shape.clone();
                    let vel = g.weight(format!("opt.vel.{name}"), shape);
                    let _ = g.emit_multi(
                        Op::SgdMomentumUpdate { lr, momentum },
                        &[w, dw, vel],
                        Role::Optimizer,
                    )?;
                }
                Optimizer::Adam { lr, beta1, beta2, eps } => {
                    let name = g.tensor(w).name.clone();
                    let shape = g.tensor(w).shape.clone();
                    let m = g.weight(format!("opt.m.{name}"), shape.clone());
                    let v = g.weight(format!("opt.v.{name}"), shape);
                    let _ = g.emit_multi(
                        Op::AdamUpdate { lr, beta1, beta2, eps },
                        &[w, dw, m, v],
                        Role::Optimizer,
                    )?;
                }
            }
            weight_grads.insert(w, dw);
        }
    }
    g.validate()?;
    Ok(weight_grads)
}

/// Accumulates `grad` into the gradient slot of `tensor`, emitting an
/// `Add` when a prior contribution exists (residual connections).
fn add_grad(g: &mut Graph, grads: &mut HashMap<TensorId, TensorId>, tensor: TensorId, grad: TensorId) -> Result<()> {
    // Accumulating into a weight keeps the WeightGrad role so the
    // scheduling pass still sees a schedulable instruction.
    let role = if g.tensor(tensor).kind == TensorKind::Weight { Role::WeightGrad } else { Role::ActGrad };
    match grads.get(&tensor) {
        Some(&existing) => {
            let sum = g.emit(Op::Add, &[existing, grad], role)?;
            grads.insert(tensor, sum);
        }
        None => {
            grads.insert(tensor, grad);
        }
    }
    Ok(())
}

/// Whether a gradient flowing into this tensor is worth emitting
/// instructions for: weights always, activations only if some earlier
/// (in reverse order) instruction will consume the gradient.
fn wants_grad(g: &Graph, t: TensorId) -> bool {
    !matches!(g.tensor(t).kind, TensorKind::Input)
}

fn emit_vjp(g: &mut Graph, instr: &Instr, grads: &mut HashMap<TensorId, TensorId>) -> Result<()> {
    // The upstream gradient of the instruction's (first) output; if no
    // output has a gradient the instruction is dead for backward purposes.
    let dy = match instr.outputs.iter().find_map(|o| grads.get(o)).copied() {
        Some(d) => d,
        None => return Ok(()),
    };
    let ins = &instr.inputs;
    match &instr.op {
        Op::MatMul { transpose_b } => {
            let (x, w) = (ins[0], ins[1]);
            if wants_grad(g, x) {
                let dx = g.emit(Op::MatMul { transpose_b: !transpose_b }, &[dy, w], Role::ActGrad)?;
                add_grad(g, grads, x, dx)?;
            }
            if wants_grad(g, w) {
                let dw = if *transpose_b {
                    g.emit(Op::MatMulDw, &[dy, x], Role::WeightGrad)?
                } else {
                    g.emit(Op::MatMulDw, &[x, dy], Role::WeightGrad)?
                };
                add_grad(g, grads, w, dw)?;
            }
        }
        Op::BatchedMatMul { transpose_b } => {
            let (x, w) = (ins[0], ins[1]);
            if wants_grad(g, x) {
                let dx = g.emit(Op::BatchedMatMul { transpose_b: !transpose_b }, &[dy, w], Role::ActGrad)?;
                add_grad(g, grads, x, dx)?;
            }
            if wants_grad(g, w) {
                let dw = if *transpose_b {
                    g.emit(Op::BatchedMatMulDw, &[dy, x], Role::WeightGrad)?
                } else {
                    g.emit(Op::BatchedMatMulDw, &[x, dy], Role::WeightGrad)?
                };
                add_grad(g, grads, w, dw)?;
            }
        }
        Op::Add => {
            for &x in ins {
                if wants_grad(g, x) {
                    add_grad(g, grads, x, dy)?;
                }
            }
        }
        Op::Mul => {
            let (a, b) = (ins[0], ins[1]);
            if wants_grad(g, a) {
                let da = g.emit(Op::Mul, &[dy, b], Role::ActGrad)?;
                add_grad(g, grads, a, da)?;
            }
            if wants_grad(g, b) {
                let db = g.emit(Op::Mul, &[dy, a], Role::ActGrad)?;
                add_grad(g, grads, b, db)?;
            }
        }
        Op::BiasAdd => {
            let (x, b) = (ins[0], ins[1]);
            if wants_grad(g, x) {
                add_grad(g, grads, x, dy)?;
            }
            if wants_grad(g, b) {
                let db = g.emit(Op::SumLeading, &[dy], Role::WeightGrad)?;
                add_grad(g, grads, b, db)?;
            }
        }
        Op::Scale { factor } => {
            let dx = g.emit(Op::Scale { factor: *factor }, &[dy], Role::ActGrad)?;
            add_grad(g, grads, ins[0], dx)?;
        }
        Op::Relu => {
            let dx = g.emit(Op::ReluGrad, &[ins[0], dy], Role::ActGrad)?;
            add_grad(g, grads, ins[0], dx)?;
        }
        Op::Gelu => {
            let dx = g.emit(Op::GeluGrad, &[ins[0], dy], Role::ActGrad)?;
            add_grad(g, grads, ins[0], dx)?;
        }
        Op::Silu => {
            let dx = g.emit(Op::SiluGrad, &[ins[0], dy], Role::ActGrad)?;
            add_grad(g, grads, ins[0], dx)?;
        }
        Op::RmsNorm { eps } => {
            let (x, gamma) = (ins[0], ins[1]);
            if wants_grad(g, x) {
                let dx = g.emit(Op::RmsNormGradX { eps: *eps }, &[x, gamma, dy], Role::ActGrad)?;
                add_grad(g, grads, x, dx)?;
            }
            if wants_grad(g, gamma) {
                let dgamma = g.emit(Op::RmsNormGradGamma { eps: *eps }, &[x, dy], Role::WeightGrad)?;
                add_grad(g, grads, gamma, dgamma)?;
            }
        }
        Op::Softmax => {
            let y = instr.outputs[0];
            let dx = g.emit(Op::SoftmaxGrad, &[y, dy], Role::ActGrad)?;
            add_grad(g, grads, ins[0], dx)?;
        }
        Op::LayerNorm { eps } => {
            let (x, gamma, beta) = (ins[0], ins[1], ins[2]);
            if wants_grad(g, x) {
                let dx = g.emit(Op::LayerNormGradX { eps: *eps }, &[x, gamma, dy], Role::ActGrad)?;
                add_grad(g, grads, x, dx)?;
            }
            if wants_grad(g, gamma) {
                let dgamma = g.emit(Op::LayerNormGradGamma { eps: *eps }, &[x, dy], Role::WeightGrad)?;
                add_grad(g, grads, gamma, dgamma)?;
            }
            if wants_grad(g, beta) {
                let dbeta = g.emit(Op::LayerNormGradBeta, &[dy], Role::WeightGrad)?;
                add_grad(g, grads, beta, dbeta)?;
            }
        }
        Op::Dropout { .. } => {
            // Identity at execution time; gradient passes through.
            add_grad(g, grads, ins[0], dy)?;
        }
        Op::Embedding => {
            let (table, ids) = (ins[0], ins[1]);
            if wants_grad(g, table) {
                let dtable = g.emit(Op::EmbeddingGrad, &[table, ids, dy], Role::WeightGrad)?;
                add_grad(g, grads, table, dtable)?;
            }
        }
        Op::AttnScores { heads, causal } => {
            let (q, k) = (ins[0], ins[1]);
            let dq = g.emit(Op::AttnScoresGradQ { heads: *heads, causal: *causal }, &[k, dy], Role::ActGrad)?;
            add_grad(g, grads, q, dq)?;
            let dk = g.emit(Op::AttnScoresGradK { heads: *heads, causal: *causal }, &[q, dy], Role::ActGrad)?;
            add_grad(g, grads, k, dk)?;
        }
        Op::AttnContext { heads } => {
            let (p, v) = (ins[0], ins[1]);
            let dp = g.emit(Op::AttnContextGradP { heads: *heads }, &[v, dy], Role::ActGrad)?;
            add_grad(g, grads, p, dp)?;
            let dv = g.emit(Op::AttnContextGradV { heads: *heads }, &[p, dy], Role::ActGrad)?;
            add_grad(g, grads, v, dv)?;
        }
        Op::Gate { experts, .. } => {
            // Only the combine weight (output 1) is differentiable.
            let scale = instr.outputs[1];
            if let Some(&dscale) = grads.get(&scale) {
                let (x, wg) = (ins[0], ins[1]);
                let assign = instr.outputs[0];
                if wants_grad(g, x) {
                    let dx = g.emit(Op::GateGradX { experts: *experts }, &[x, wg, assign, dscale], Role::ActGrad)?;
                    add_grad(g, grads, x, dx)?;
                }
                if wants_grad(g, wg) {
                    let dwg = g.emit(Op::GateGradW { experts: *experts }, &[x, wg, assign, dscale], Role::WeightGrad)?;
                    add_grad(g, grads, wg, dwg)?;
                }
            }
        }
        Op::MoeDispatch { experts, capacity } => {
            let x = ins[0];
            let assign = ins[1];
            if wants_grad(g, x) {
                let xs = g.tensor(x).shape.clone();
                let dx = g.emit(
                    Op::MoeDispatchGrad {
                        experts: *experts,
                        capacity: *capacity,
                        batch: xs.dim(0),
                        seq: xs.dim(1),
                    },
                    &[assign, dy],
                    Role::ActGrad,
                )?;
                add_grad(g, grads, x, dx)?;
            }
        }
        Op::MoeGather { experts, capacity, .. } => {
            let (buf, assign, scale) = (ins[0], ins[1], ins[2]);
            let dbuf = g.emit(
                Op::MoeGatherGradBuf { experts: *experts, capacity: *capacity },
                &[assign, scale, dy],
                Role::ActGrad,
            )?;
            add_grad(g, grads, buf, dbuf)?;
            let dscale = g.emit(
                Op::MoeGatherGradScale { experts: *experts, capacity: *capacity },
                &[buf, assign, dy],
                Role::ActGrad,
            )?;
            add_grad(g, grads, scale, dscale)?;
        }
        Op::ExpertsLayout { gpus } => {
            let dx = g.emit(Op::ExpertsLayoutInv { gpus: *gpus }, &[dy], Role::ActGrad)?;
            add_grad(g, grads, ins[0], dx)?;
        }
        Op::ExpertsLayoutInv { gpus } => {
            let dx = g.emit(Op::ExpertsLayout { gpus: *gpus }, &[dy], Role::ActGrad)?;
            add_grad(g, grads, ins[0], dx)?;
        }
        Op::AllToAll => {
            // The uniform all-to-all is an involution; its adjoint is itself.
            let dx = g.emit(Op::AllToAll, &[dy], Role::Comm)?;
            add_grad(g, grads, ins[0], dx)?;
        }
        Op::AllGather { gpus } => {
            // FSDP: the adjoint of gathering shards is reduce-scattering
            // the gradient back to the shard owners.
            let dshard = g.emit(Op::ReduceScatter { gpus: *gpus }, &[dy], Role::Comm)?;
            add_grad(g, grads, ins[0], dshard)?;
        }
        // --- partitioned / irregular pipeline (emitted by the partition
        // pass before autodiff runs) ---
        Op::Slice { axis, start, end } => {
            let x = ins[0];
            let extent = g.tensor(x).shape.dim(*axis);
            let dx = g.emit(
                Op::Pad { axis: *axis, before: *start, after: extent - end },
                &[dy],
                Role::ActGrad,
            )?;
            add_grad(g, grads, x, dx)?;
        }
        Op::Concat { axis } => {
            let mut offset = 0usize;
            for &x in ins {
                let extent = g.tensor(x).shape.dim(*axis);
                if wants_grad(g, x) {
                    let dx = g.emit(
                        Op::Slice { axis: *axis, start: offset, end: offset + extent },
                        &[dy],
                        Role::ActGrad,
                    )?;
                    add_grad(g, grads, x, dx)?;
                }
                offset += extent;
            }
        }
        Op::GateChunk { experts, .. } => {
            // Same gradient structure as Gate: only the combine weight is
            // differentiable; the capacity state is integer metadata.
            let scale = instr.outputs[1];
            if let Some(&dscale) = grads.get(&scale) {
                let (x, wg) = (ins[0], ins[1]);
                let assign = instr.outputs[0];
                if wants_grad(g, x) {
                    let dx = g.emit(Op::GateGradX { experts: *experts }, &[x, wg, assign, dscale], Role::ActGrad)?;
                    add_grad(g, grads, x, dx)?;
                }
                if wants_grad(g, wg) {
                    let dwg = g.emit(Op::GateGradW { experts: *experts }, &[x, wg, assign, dscale], Role::WeightGrad)?;
                    add_grad(g, grads, wg, dwg)?;
                }
            }
        }
        Op::MoeDispatchIrr { experts, capacity, .. } => {
            // Only the packed buffer (output 0) carries gradient; counts
            // are integer metadata.
            if let Some(&dbuf) = grads.get(&instr.outputs[0]) {
                let x = ins[0];
                let assign = ins[1];
                if wants_grad(g, x) {
                    let xs = g.tensor(x).shape.clone();
                    let dx = g.emit(
                        Op::MoeDispatchIrrGrad {
                            experts: *experts,
                            capacity: *capacity,
                            batch: xs.dim(0),
                            seq: xs.dim(1),
                        },
                        &[assign, dbuf],
                        Role::ActGrad,
                    )?;
                    add_grad(g, grads, x, dx)?;
                }
            }
        }
        Op::AllToAllIrr => {
            // Adjoint: send each received chunk back to its source —
            // another irregular all-to-all driven by the *received*
            // counts (output 1 of the forward instruction).
            if let Some(&dbuf) = grads.get(&instr.outputs[0]) {
                let counts_out = instr.outputs[1];
                let outs = g.emit_multi(Op::AllToAllIrr, &[dbuf, counts_out], Role::Comm)?;
                add_grad(g, grads, ins[0], outs[0])?;
            }
        }
        Op::MoeGatherIrr { experts, capacity, .. } => {
            let (buf, assign, scale) = (ins[0], ins[1], ins[2]);
            let dbuf = g.emit(
                Op::MoeGatherIrrGradBuf { experts: *experts, capacity: *capacity },
                &[assign, scale, dy],
                Role::ActGrad,
            )?;
            add_grad(g, grads, buf, dbuf)?;
            let dscale = g.emit(
                Op::MoeGatherGradScale { experts: *experts, capacity: *capacity },
                &[buf, assign, dy],
                Role::ActGrad,
            )?;
            add_grad(g, grads, scale, dscale)?;
        }
        other => return Err(IrError::NonDifferentiable(other.name())),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    /// Tiny forward graph: embedding → matmul → bias → gelu → matmul → loss.
    fn dense_forward() -> (Graph, Vec<TensorId>) {
        let mut g = Graph::new();
        let table = g.weight("wte", vec![10, 8]);
        let ids = g.input("ids", vec![2, 4]);
        let targets = g.input("targets", vec![2, 4]);
        let w1 = g.weight("w1", vec![8, 16]);
        let b1 = g.weight("b1", vec![16]);
        let w2 = g.weight("w2", vec![16, 10]);
        let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
        let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w1], Role::Forward).unwrap();
        let h = g.emit(Op::BiasAdd, &[h, b1], Role::Forward).unwrap();
        let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
        let logits = g.emit(Op::MatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
        let _outs = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();
        (g, vec![table, w1, b1, w2])
    }

    #[test]
    fn backward_produces_grad_for_every_weight() {
        let (mut g, weights) = dense_forward();
        let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
        for w in &weights {
            assert!(grads.contains_key(w), "missing grad for {:?}", g.tensor(*w).name);
            let dw = grads[w];
            assert_eq!(g.tensor(dw).shape, g.tensor(*w).shape, "grad shape mismatch");
        }
        assert!(g.validate().is_ok());
    }

    #[test]
    fn backward_tags_weight_grads() {
        let (mut g, _) = dense_forward();
        build_backward(&mut g, &BackwardOptions::default()).unwrap();
        let n_dw = g.weight_grad_positions().len();
        // wte, w1, b1, w2 → at least 4 weight-grad instructions.
        assert!(n_dw >= 4, "expected >=4 dW instrs, got {n_dw}");
    }

    #[test]
    fn backward_without_loss_fails() {
        let mut g = Graph::new();
        let x = g.input("x", vec![2, 4]);
        let _y = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        assert!(build_backward(&mut g, &BackwardOptions::default()).is_err());
    }

    #[test]
    fn sgd_and_allreduce_options_emit_instrs() {
        let (mut g, _) = dense_forward();
        let opts = BackwardOptions { sgd_lr: Some(0.1), optimizer: Default::default(), allreduce_grads: true };
        build_backward(&mut g, &opts).unwrap();
        let n_allreduce = g.instrs().iter().filter(|i| matches!(i.op, Op::AllReduce)).count();
        let n_sgd = g.instrs().iter().filter(|i| matches!(i.op, Op::SgdUpdate { .. })).count();
        assert_eq!(n_allreduce, 4);
        assert_eq!(n_sgd, 4);
    }

    #[test]
    fn residual_connection_accumulates() {
        let mut g = Graph::new();
        let targets = g.input("targets", vec![1, 2]);
        let ids = g.input("ids", vec![1, 2]);
        let table = g.weight("wte", vec![4, 4]);
        let w = g.weight("w", vec![4, 4]);
        let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
        let branch = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let sum = g.emit(Op::Add, &[x, branch], Role::Forward).unwrap();
        let _loss = g.emit_multi(Op::CrossEntropy, &[sum, targets], Role::Forward).unwrap();
        let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
        assert!(grads.contains_key(&w));
        // x receives two gradient contributions -> an Add with ActGrad role.
        let n_grad_adds = g
            .instrs()
            .iter()
            .filter(|i| matches!(i.op, Op::Add) && i.role == Role::ActGrad)
            .count();
        assert!(n_grad_adds >= 1);
    }

    #[test]
    fn moe_layer_differentiates() {
        let (e, c, gpus) = (4usize, 4usize, 2usize);
        let mut g = Graph::new();
        let ids = g.input("ids", vec![2, 4]);
        let targets = g.input("targets", vec![2, 4]);
        let table = g.weight("wte", vec![10, 8]);
        let wg = g.weight("gate.w", vec![8, e]);
        let w1 = g.weight("expert.w1", vec![e / gpus, 8, 16]);
        let w2 = g.weight("expert.w2", vec![e / gpus, 16, 8]);
        let lm = g.weight("lm", vec![8, 10]);
        let x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
        let gate = g
            .emit_multi(Op::Gate { kind: GateKind::Switch, experts: e, capacity: c }, &[x, wg], Role::Forward)
            .unwrap();
        let buf = g
            .emit(Op::MoeDispatch { experts: e, capacity: c }, &[x, gate[0], gate[1]], Role::Forward)
            .unwrap();
        let buf = g.emit(Op::AllToAll, &[buf], Role::Comm).unwrap();
        let loc = g.emit(Op::ExpertsLayout { gpus }, &[buf], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();
        let h = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
        let h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[h, w2], Role::Forward).unwrap();
        let back = g.emit(Op::ExpertsLayoutInv { gpus }, &[h], Role::Forward).unwrap();
        let back = g.emit(Op::AllToAll, &[back], Role::Comm).unwrap();
        let y = g
            .emit(
                Op::MoeGather { experts: e, capacity: c, batch: 2, seq: 4 },
                &[back, gate[0], gate[1]],
                Role::Forward,
            )
            .unwrap();
        let logits = g.emit(Op::MatMul { transpose_b: false }, &[y, lm], Role::Forward).unwrap();
        let _ = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();

        let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
        for w in [wg, w1, w2, lm, table] {
            assert!(grads.contains_key(&w), "missing grad for {}", g.tensor(w).name);
        }
        // Backward must contain two more all-to-alls (adjoints of the two
        // forward ones).
        let n_a2a = g.instrs().iter().filter(|i| i.op.is_all_to_all()).count();
        assert_eq!(n_a2a, 4);
        assert!(g.validate().is_ok());
    }
}
