//! The operator set of the Lancet IR.
//!
//! Operators carry the static attributes needed for shape inference, cost
//! modelling (FLOP and byte counts), and the partition pass's constraint
//! functions. Dynamic behaviour (actual routing, actual communication) lives
//! in `lancet-moe` / `lancet-exec`.

use crate::{GateKind, IrError, Result};
use lancet_tensor::Shape;

/// An IR operator.
///
/// Naming convention: `Foo` is a forward operator, `FooGrad*` its backward
/// companions. Weight-gradient producers ([`Op::MatMulDw`],
/// [`Op::BatchedMatMulDw`], [`Op::SumLeading`], [`Op::EmbeddingGrad`],
/// [`Op::GateGradW`], `LayerNormGrad{Gamma,Beta}`) are the instructions the
/// dW-scheduling pass moves around.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    // ------------------------------------------------------------------
    // Dense compute
    // ------------------------------------------------------------------
    /// `[x(…,K), w(K,N)] → (…,N)`; with `transpose_b`, `w` is `(N,K)`.
    MatMul {
        /// Interpret the weight operand as transposed.
        transpose_b: bool,
    },
    /// Weight gradient of a matmul: `[x(…,K), dy(…,N)] → (K,N)`, contracting
    /// all leading dimensions. This is the canonical schedulable dW op.
    MatMulDw,
    /// Per-expert matmul `[x(E,C,K), w(E,K,N)] → (E,C,N)`; with
    /// `transpose_b`, `w` is `(E,N,K)`.
    BatchedMatMul {
        /// Interpret the weight operand as transposed.
        transpose_b: bool,
    },
    /// Weight gradient of a per-expert matmul: `[x(E,C,K), dy(E,C,N)] → (E,K,N)`.
    BatchedMatMulDw,
    /// Element-wise sum of two same-shaped tensors.
    Add,
    /// Element-wise product of two same-shaped tensors.
    Mul,
    /// `[x(…,N), b(N)] → (…,N)` broadcast bias add.
    BiasAdd,
    /// Sums all leading dims: `[dy(…,N)] → (N,)`. Bias weight gradient.
    SumLeading,
    /// Multiplies by a compile-time constant.
    Scale {
        /// The constant factor.
        factor: f32,
    },
    /// Rectified linear unit.
    Relu,
    /// `[x, dy] → dx` for ReLU.
    ReluGrad,
    /// GELU activation (tanh approximation).
    Gelu,
    /// `[x, dy] → dx` for GELU.
    GeluGrad,
    /// Softmax over the last dimension.
    Softmax,
    /// `[y, dy] → dx` given the softmax output `y`.
    SoftmaxGrad,
    /// `[x(…,D), gamma(D), beta(D)] → (…,D)`.
    LayerNorm {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// `[x, gamma, dy] → dx`.
    LayerNormGradX {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// `[x, dy] → dgamma(D,)`.
    LayerNormGradGamma {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// `[dy] → dbeta(D,)`.
    LayerNormGradBeta,
    /// `[x(…,D), gamma(D)] → (…,D)` RMS normalization (Llama/Mixtral).
    RmsNorm {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// `[x, gamma, dy] → dx`.
    RmsNormGradX {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// `[x, dy] → dgamma(D,)`.
    RmsNormGradGamma {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// SiLU (swish) activation, the SwiGLU building block.
    Silu,
    /// `[x, dy] → dx` for SiLU.
    SiluGrad,
    /// Identity at execution time; carries the dropout probability for cost
    /// accounting (training kernels still touch all bytes).
    Dropout {
        /// Drop probability.
        p: f32,
    },
    /// `[table(V,H), ids(B,S)] → (B,S,H)` lookup.
    Embedding,
    /// `[table(V,H), ids(B,S), dy(B,S,H)] → (V,H)` scatter-add.
    EmbeddingGrad,
    // ------------------------------------------------------------------
    // Fused attention
    // ------------------------------------------------------------------
    /// `[q(B,Sq,H), k(B,Sk,H)] → (B,heads,Sq,Sk)` scaled (optionally
    /// causal) attention logits.
    ///
    /// `Sq == Sk` is the ordinary full-sequence forward. `Sq < Sk` is the
    /// **KV-cached decode path**: the queries are the *last* `Sq`
    /// positions of a `Sk`-long sequence, so query `i`'s absolute
    /// position is `i + (Sk − Sq)` and the causal mask hides keys with
    /// `j > i + (Sk − Sq)`. The position offset is explicit in the shape
    /// contract — kernels must not assume queries start at position 0.
    AttnScores {
        /// Number of attention heads; must divide `H`.
        heads: usize,
        /// Apply a causal mask (GPT-style).
        causal: bool,
    },
    /// `[k(B,S,H), dy(B,heads,S,S)] → dq(B,S,H)`.
    AttnScoresGradQ {
        /// Number of attention heads.
        heads: usize,
        /// Whether the forward op was causal.
        causal: bool,
    },
    /// `[q(B,S,H), dy(B,heads,S,S)] → dk(B,S,H)`.
    AttnScoresGradK {
        /// Number of attention heads.
        heads: usize,
        /// Whether the forward op was causal.
        causal: bool,
    },
    /// `[p(B,heads,Sq,Sk), v(B,Sk,H)] → (B,Sq,H)` probability-weighted
    /// values. `Sq < Sk` is the KV-cached decode path (see
    /// [`Op::AttnScores`]); `Sq == Sk` the full-sequence forward.
    AttnContext {
        /// Number of attention heads.
        heads: usize,
    },
    /// `[v(B,S,H), dy(B,S,H)] → dp(B,heads,S,S)`.
    AttnContextGradP {
        /// Number of attention heads.
        heads: usize,
    },
    /// `[p(B,heads,S,S), dy(B,S,H)] → dv(B,S,H)`.
    AttnContextGradV {
        /// Number of attention heads.
        heads: usize,
    },
    // ------------------------------------------------------------------
    // Loss
    // ------------------------------------------------------------------
    /// `[logits(B,S,V), targets(B,S)] → [loss(1,), probs(B,S,V)]`
    /// mean token cross-entropy; also returns softmax probabilities for the
    /// backward pass.
    CrossEntropy,
    /// `[probs(B,S,V), targets(B,S)] → dlogits(B,S,V)`.
    CrossEntropyGrad,
    // ------------------------------------------------------------------
    // Mixture-of-Experts
    // ------------------------------------------------------------------
    /// `[x(B,S,H), wg(H,E)] → [assign(B·S,), scale(B·S,)]`.
    ///
    /// `assign[t]` is the target expert (or −1 when dropped after capacity),
    /// `scale[t]` the combine weight.
    Gate {
        /// Routing algorithm.
        kind: GateKind,
        /// Total number of experts `E` across all devices.
        experts: usize,
        /// Per-expert capacity `C`.
        capacity: usize,
    },
    /// `[x(B,S,H), wg(H,E), assign(T,), dscale(T,)] → dx(B,S,H)`.
    GateGradX {
        /// Total number of experts.
        experts: usize,
    },
    /// `[x(B,S,H), wg(H,E), assign(T,), dscale(T,)] → dwg(H,E)`.
    GateGradW {
        /// Total number of experts.
        experts: usize,
    },
    /// `[x(B,S,H), assign(T,), scale(T,)] → buf(E,C,H)`: scatter tokens to
    /// the per-expert send buffer, zero-padded to capacity.
    MoeDispatch {
        /// Total number of experts.
        experts: usize,
        /// Per-expert capacity.
        capacity: usize,
    },
    /// `[assign(T,), dbuf(E,C,H)] → dx(B,S,H)`: gather gradients back to
    /// token order. `batch`/`seq` give the token layout.
    MoeDispatchGrad {
        /// Total number of experts.
        experts: usize,
        /// Per-expert capacity.
        capacity: usize,
        /// Batch extent of the token tensor.
        batch: usize,
        /// Sequence extent of the token tensor.
        seq: usize,
    },
    /// `[buf(E,C,H), assign(T,), scale(T,)] → y(B,S,H)`: restore received
    /// expert outputs to original token order, scaled by the combine
    /// weight; dropped tokens produce zero rows.
    MoeGather {
        /// Total number of experts.
        experts: usize,
        /// Per-expert capacity.
        capacity: usize,
        /// Batch extent of the output.
        batch: usize,
        /// Sequence extent of the output.
        seq: usize,
    },
    /// `[assign(T,), scale(T,), dy(B,S,H)] → dbuf(E,C,H)`.
    MoeGatherGradBuf {
        /// Total number of experts.
        experts: usize,
        /// Per-expert capacity.
        capacity: usize,
    },
    /// `[buf(E,C,H), assign(T,), dy(B,S,H)] → dscale(T,)`.
    MoeGatherGradScale {
        /// Total number of experts.
        experts: usize,
        /// Per-expert capacity.
        capacity: usize,
    },
    /// `(E,C,M) → (E_l, G·C, M)`: regroup the received buffer so each of
    /// the `E_l = E/G` local experts sees its tokens from all `G` devices
    /// contiguously.
    ExpertsLayout {
        /// Number of participating devices `G`.
        gpus: usize,
    },
    /// Inverse of [`Op::ExpertsLayout`]: `(E_l, G·C, M) → (E,C,M)`.
    ExpertsLayoutInv {
        /// Number of participating devices `G`.
        gpus: usize,
    },
    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------
    /// Uniform all-to-all over the leading (expert) axis: shape-preserving
    /// exchange of `(E,C,M)` buffers across `G` devices.
    AllToAll,
    /// Sum all-reduce across devices (gradient synchronization).
    AllReduce,
    /// FSDP/ZeRO-3 weight gather: concatenates each device's parameter
    /// shard along axis 0, materializing the full weight:
    /// `(R/G, …) → (R, …)`.
    AllGather {
        /// Number of participating devices `G`.
        gpus: usize,
    },
    /// Adjoint of [`Op::AllGather`]: sums gradients across devices and
    /// returns each device its shard: `(R, …) → (R/G, …)`.
    ReduceScatter {
        /// Number of participating devices `G`.
        gpus: usize,
    },
    // ------------------------------------------------------------------
    // Partitioned / irregular MoE (emitted by the partition pass)
    // ------------------------------------------------------------------
    /// Capacity-passing partitioned gate (paper Fig. 5c):
    /// `[x(Bc,S,H), wg(H,E), cap_in(E,)] → [assign(Tc,), scale(Tc,), cap_out(E,)]`.
    ///
    /// `cap_in[e]` is the number of capacity slots already consumed by
    /// earlier micro-batches; the chunk drops exactly the tokens the
    /// unpartitioned gate would drop.
    GateChunk {
        /// Routing algorithm (must be partitionable).
        kind: GateKind,
        /// Total number of experts.
        experts: usize,
        /// Shared (full) per-expert capacity `C`.
        capacity: usize,
        /// Total number of chunks in the pipeline.
        parts: usize,
    },
    /// `[x(Bc,S,H), assign(Tc,), scale(Tc,)] → [buf(E,C,H), counts(E,)]`:
    /// densely packs this chunk's kept tokens per expert and reports the
    /// actual counts for the irregular all-to-all.
    MoeDispatchIrr {
        /// Total number of experts.
        experts: usize,
        /// Shared per-expert capacity.
        capacity: usize,
        /// Number of chunks in the pipeline this dispatch belongs to —
        /// the `n` of the paper's static-shape `C/n` cost approximation.
        parts: usize,
    },
    /// `[assign(Tc,), dbuf(E,C,H)] → dx(Bc,S,H)` for the irregular dispatch.
    MoeDispatchIrrGrad {
        /// Total number of experts.
        experts: usize,
        /// Shared per-expert capacity.
        capacity: usize,
        /// Chunk batch extent.
        batch: usize,
        /// Sequence extent.
        seq: usize,
    },
    /// Two-phase irregular all-to-all (paper Fig. 10):
    /// `[buf(E,C,M), counts(E,)] → [buf'(E,C,M), counts'(E,)]`.
    ///
    /// A first (tiny) exchange communicates the sizes, a second exchange
    /// moves only the actual data; padding is never transmitted.
    AllToAllIrr,
    /// `[buf(E,C,H), assign(Tc,), scale(Tc,)] → y(Bc,S,H)` for the
    /// irregular pipeline.
    MoeGatherIrr {
        /// Total number of experts.
        experts: usize,
        /// Shared per-expert capacity.
        capacity: usize,
        /// Chunk batch extent.
        batch: usize,
        /// Sequence extent.
        seq: usize,
    },
    /// `[assign(Tc,), scale(Tc,), dy(Bc,S,H)] → dbuf(E,C,H)`.
    MoeGatherIrrGradBuf {
        /// Total number of experts.
        experts: usize,
        /// Shared per-expert capacity.
        capacity: usize,
    },
    // ------------------------------------------------------------------
    // Data movement / misc
    // ------------------------------------------------------------------
    /// Copies `start..end` along `axis`.
    Slice {
        /// Axis to slice.
        axis: usize,
        /// Start index (inclusive).
        start: usize,
        /// End index (exclusive).
        end: usize,
    },
    /// Concatenates all inputs along `axis`.
    Concat {
        /// Axis to concatenate.
        axis: usize,
    },
    /// Zero-pads along `axis`: `before` rows in front, `after` rows
    /// behind. Adjoint of [`Op::Slice`]; emitted by autodiff.
    Pad {
        /// Axis to pad.
        axis: usize,
        /// Leading padding extent.
        before: usize,
        /// Trailing padding extent.
        after: usize,
    },
    /// Produces an all-zeros tensor of the given shape (e.g. the initial
    /// `cap_in` of a partitioned gate chain).
    Zeros {
        /// Output shape.
        shape: Vec<usize>,
    },
    /// `[w, dw] → w − lr·dw`.
    SgdUpdate {
        /// Learning rate.
        lr: f32,
    },
    /// Heavy-ball SGD (the paper's optimizer):
    /// `[w, dw, vel] → [w − lr·vel', vel']` with `vel' = μ·vel + dw`.
    SgdMomentumUpdate {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient μ.
        momentum: f32,
    },
    /// Adam (no bias correction — steady-state form for single-iteration
    /// graphs): `[w, dw, m, v] → [w', m', v']` with
    /// `m' = β₁m + (1−β₁)dw`, `v' = β₂v + (1−β₂)dw²`,
    /// `w' = w − lr·m'/(√v' + ε)`.
    AdamUpdate {
        /// Learning rate.
        lr: f32,
        /// First-moment decay β₁.
        beta1: f32,
        /// Second-moment decay β₂.
        beta2: f32,
        /// Denominator stabilizer ε.
        eps: f32,
    },
}

impl Op {
    /// Short stable name for diagnostics, profiling keys and DOT output.
    pub fn name(&self) -> &'static str {
        match self {
            Op::MatMul { .. } => "matmul",
            Op::MatMulDw => "matmul_dw",
            Op::BatchedMatMul { .. } => "batched_matmul",
            Op::BatchedMatMulDw => "batched_matmul_dw",
            Op::Add => "add",
            Op::Mul => "mul",
            Op::BiasAdd => "bias_add",
            Op::SumLeading => "sum_leading",
            Op::Scale { .. } => "scale",
            Op::Relu => "relu",
            Op::ReluGrad => "relu_grad",
            Op::Gelu => "gelu",
            Op::GeluGrad => "gelu_grad",
            Op::Softmax => "softmax",
            Op::SoftmaxGrad => "softmax_grad",
            Op::LayerNorm { .. } => "layer_norm",
            Op::LayerNormGradX { .. } => "layer_norm_grad_x",
            Op::LayerNormGradGamma { .. } => "layer_norm_grad_gamma",
            Op::LayerNormGradBeta => "layer_norm_grad_beta",
            Op::RmsNorm { .. } => "rms_norm",
            Op::RmsNormGradX { .. } => "rms_norm_grad_x",
            Op::RmsNormGradGamma { .. } => "rms_norm_grad_gamma",
            Op::Silu => "silu",
            Op::SiluGrad => "silu_grad",
            Op::Dropout { .. } => "dropout",
            Op::Embedding => "embedding",
            Op::EmbeddingGrad => "embedding_grad",
            Op::AttnScores { .. } => "attn_scores",
            Op::AttnScoresGradQ { .. } => "attn_scores_grad_q",
            Op::AttnScoresGradK { .. } => "attn_scores_grad_k",
            Op::AttnContext { .. } => "attn_context",
            Op::AttnContextGradP { .. } => "attn_context_grad_p",
            Op::AttnContextGradV { .. } => "attn_context_grad_v",
            Op::CrossEntropy => "cross_entropy",
            Op::CrossEntropyGrad => "cross_entropy_grad",
            Op::Gate { .. } => "gate",
            Op::GateGradX { .. } => "gate_grad_x",
            Op::GateGradW { .. } => "gate_grad_w",
            Op::MoeDispatch { .. } => "moe_dispatch",
            Op::MoeDispatchGrad { .. } => "moe_dispatch_grad",
            Op::MoeGather { .. } => "moe_gather",
            Op::MoeGatherGradBuf { .. } => "moe_gather_grad_buf",
            Op::MoeGatherGradScale { .. } => "moe_gather_grad_scale",
            Op::ExpertsLayout { .. } => "experts_layout",
            Op::ExpertsLayoutInv { .. } => "experts_layout_inv",
            Op::AllToAll => "all_to_all",
            Op::AllReduce => "all_reduce",
            Op::AllGather { .. } => "all_gather",
            Op::ReduceScatter { .. } => "reduce_scatter",
            Op::GateChunk { .. } => "gate_chunk",
            Op::MoeDispatchIrr { .. } => "moe_dispatch_irr",
            Op::MoeDispatchIrrGrad { .. } => "moe_dispatch_irr_grad",
            Op::AllToAllIrr => "all_to_all_irr",
            Op::MoeGatherIrr { .. } => "moe_gather_irr",
            Op::MoeGatherIrrGradBuf { .. } => "moe_gather_irr_grad_buf",
            Op::Slice { .. } => "slice",
            Op::Pad { .. } => "pad",
            Op::Concat { .. } => "concat",
            Op::Zeros { .. } => "zeros",
            Op::SgdUpdate { .. } => "sgd_update",
            Op::SgdMomentumUpdate { .. } => "sgd_momentum_update",
            Op::AdamUpdate { .. } => "adam_update",
        }
    }

    /// Number of inputs the operator consumes, or `None` when variadic
    /// ([`Op::Concat`]).
    pub fn arity(&self) -> Option<usize> {
        Some(match self {
            Op::Zeros { .. } => 0,
            Op::Relu
            | Op::Gelu
            | Op::Silu
            | Op::Softmax
            | Op::Dropout { .. }
            | Op::Scale { .. }
            | Op::SumLeading
            | Op::LayerNormGradBeta
            | Op::ExpertsLayout { .. }
            | Op::ExpertsLayoutInv { .. }
            | Op::AllToAll
            | Op::AllReduce
            | Op::AllGather { .. }
            | Op::ReduceScatter { .. }
            | Op::Slice { .. }
            | Op::Pad { .. } => 1,
            Op::MatMul { .. }
            | Op::MatMulDw
            | Op::BatchedMatMul { .. }
            | Op::BatchedMatMulDw
            | Op::Add
            | Op::Mul
            | Op::BiasAdd
            | Op::ReluGrad
            | Op::GeluGrad
            | Op::SiluGrad
            | Op::RmsNorm { .. }
            | Op::RmsNormGradGamma { .. }
            | Op::SoftmaxGrad
            | Op::Embedding
            | Op::AttnScores { .. }
            | Op::AttnScoresGradQ { .. }
            | Op::AttnScoresGradK { .. }
            | Op::AttnContext { .. }
            | Op::AttnContextGradP { .. }
            | Op::AttnContextGradV { .. }
            | Op::CrossEntropy
            | Op::CrossEntropyGrad
            | Op::Gate { .. }
            | Op::LayerNormGradGamma { .. }
            | Op::MoeDispatchGrad { .. }
            | Op::MoeDispatchIrrGrad { .. }
            | Op::AllToAllIrr
            | Op::SgdUpdate { .. } => 2,
            Op::SgdMomentumUpdate { .. } => 3,
            Op::AdamUpdate { .. } => 4,
            Op::LayerNorm { .. }
            | Op::LayerNormGradX { .. }
            | Op::RmsNormGradX { .. }
            | Op::EmbeddingGrad
            | Op::MoeDispatch { .. }
            | Op::MoeGather { .. }
            | Op::MoeGatherGradBuf { .. }
            | Op::MoeGatherGradScale { .. }
            | Op::GateChunk { .. }
            | Op::MoeDispatchIrr { .. }
            | Op::MoeGatherIrr { .. }
            | Op::MoeGatherIrrGradBuf { .. } => 3,
            Op::GateGradX { .. } | Op::GateGradW { .. } => 4,
            Op::Concat { .. } => return None,
        })
    }

    /// True for communication operators (executed on the comm stream).
    pub fn is_comm(&self) -> bool {
        matches!(
            self,
            Op::AllToAll
                | Op::AllToAllIrr
                | Op::AllReduce
                | Op::AllGather { .. }
                | Op::ReduceScatter { .. }
        )
    }

    /// True for (uniform or irregular) all-to-all operators — the
    /// operators whose latency Lancet hides.
    pub fn is_all_to_all(&self) -> bool {
        matches!(self, Op::AllToAll | Op::AllToAllIrr)
    }

    /// Infers output shapes from input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ArityMismatch`] or [`IrError::ShapeMismatch`]
    /// when the inputs are malformed.
    pub fn infer_shapes(&self, ins: &[&Shape]) -> Result<Vec<Shape>> {
        if let Some(n) = self.arity() {
            if ins.len() != n {
                return Err(IrError::ArityMismatch { op: self.name(), expected: n, actual: ins.len() });
            }
        } else if ins.is_empty() {
            return Err(IrError::ArityMismatch { op: self.name(), expected: 1, actual: 0 });
        }
        let fail = |detail: String| IrError::ShapeMismatch { op: self.name(), detail };
        match self {
            Op::MatMul { transpose_b } => {
                let x = ins[0];
                let w = ins[1];
                if x.rank() < 1 || w.rank() != 2 {
                    return Err(fail(format!("x{x}, w{w}")));
                }
                let k = x.dims()[x.rank() - 1];
                let (wk, n) = if *transpose_b { (w.dim(1), w.dim(0)) } else { (w.dim(0), w.dim(1)) };
                if k != wk {
                    return Err(fail(format!("inner dims {k} vs {wk}")));
                }
                let mut dims = x.dims().to_vec();
                *dims.last_mut().expect("rank >= 1") = n;
                Ok(vec![Shape::new(dims)])
            }
            Op::MatMulDw => {
                let x = ins[0];
                let dy = ins[1];
                if x.rank() != dy.rank() || x.dims()[..x.rank() - 1] != dy.dims()[..dy.rank() - 1] {
                    return Err(fail(format!("x{x}, dy{dy}")));
                }
                Ok(vec![Shape::new(vec![x.dims()[x.rank() - 1], dy.dims()[dy.rank() - 1]])])
            }
            Op::BatchedMatMul { transpose_b } => {
                let x = ins[0];
                let w = ins[1];
                if x.rank() != 3 || w.rank() != 3 || x.dim(0) != w.dim(0) {
                    return Err(fail(format!("x{x}, w{w}")));
                }
                let (wk, n) = if *transpose_b { (w.dim(2), w.dim(1)) } else { (w.dim(1), w.dim(2)) };
                if x.dim(2) != wk {
                    return Err(fail(format!("inner dims {} vs {}", x.dim(2), wk)));
                }
                Ok(vec![Shape::new(vec![x.dim(0), x.dim(1), n])])
            }
            Op::BatchedMatMulDw => {
                let x = ins[0];
                let dy = ins[1];
                if x.rank() != 3 || dy.rank() != 3 || x.dim(0) != dy.dim(0) || x.dim(1) != dy.dim(1) {
                    return Err(fail(format!("x{x}, dy{dy}")));
                }
                Ok(vec![Shape::new(vec![x.dim(0), x.dim(2), dy.dim(2)])])
            }
            Op::RmsNorm { .. } => {
                let (x, g) = (ins[0], ins[1]);
                let d = *x.dims().last().unwrap_or(&0);
                if g.dims() != [d] {
                    return Err(fail(format!("x{x}, gamma{g}")));
                }
                Ok(vec![x.clone()])
            }
            Op::RmsNormGradX { .. } => {
                let (x, g, dy) = (ins[0], ins[1], ins[2]);
                let d = *x.dims().last().unwrap_or(&0);
                if g.dims() != [d] || dy != x {
                    return Err(fail(format!("x{x}, gamma{g}, dy{dy}")));
                }
                Ok(vec![x.clone()])
            }
            Op::RmsNormGradGamma { .. } => {
                let (x, dy) = (ins[0], ins[1]);
                if x != dy {
                    return Err(fail(format!("x{x}, dy{dy}")));
                }
                Ok(vec![Shape::new(vec![*x.dims().last().unwrap_or(&0)])])
            }
            Op::Add | Op::Mul | Op::ReluGrad | Op::GeluGrad | Op::SiluGrad | Op::SoftmaxGrad | Op::SgdUpdate { .. } => {
                if ins[0] != ins[1] {
                    return Err(fail(format!("{} vs {}", ins[0], ins[1])));
                }
                Ok(vec![ins[0].clone()])
            }
            Op::SgdMomentumUpdate { .. } => {
                if ins[0] != ins[1] || ins[0] != ins[2] {
                    return Err(fail(format!("{} vs {} vs {}", ins[0], ins[1], ins[2])));
                }
                Ok(vec![ins[0].clone(), ins[0].clone()])
            }
            Op::AdamUpdate { .. } => {
                if ins.iter().any(|&s| s != ins[0]) {
                    return Err(fail("adam operands must share the weight shape".into()));
                }
                Ok(vec![ins[0].clone(), ins[0].clone(), ins[0].clone()])
            }
            Op::BiasAdd => {
                let x = ins[0];
                let b = ins[1];
                if b.rank() != 1 || b.dim(0) != *x.dims().last().unwrap_or(&0) {
                    return Err(fail(format!("x{x}, b{b}")));
                }
                Ok(vec![x.clone()])
            }
            Op::SumLeading => {
                let x = ins[0];
                if x.rank() < 1 {
                    return Err(fail("scalar input".into()));
                }
                Ok(vec![Shape::new(vec![*x.dims().last().expect("rank >= 1")])])
            }
            Op::Scale { .. } | Op::Relu | Op::Gelu | Op::Silu | Op::Softmax | Op::Dropout { .. } => {
                Ok(vec![ins[0].clone()])
            }
            Op::LayerNorm { .. } => {
                let (x, g, b) = (ins[0], ins[1], ins[2]);
                let d = *x.dims().last().unwrap_or(&0);
                if g.dims() != [d] || b.dims() != [d] {
                    return Err(fail(format!("x{x}, gamma{g}, beta{b}")));
                }
                Ok(vec![x.clone()])
            }
            Op::LayerNormGradX { .. } => {
                let (x, g, dy) = (ins[0], ins[1], ins[2]);
                let d = *x.dims().last().unwrap_or(&0);
                if g.dims() != [d] || dy != x {
                    return Err(fail(format!("x{x}, gamma{g}, dy{dy}")));
                }
                Ok(vec![x.clone()])
            }
            Op::LayerNormGradGamma { .. } => {
                let (x, dy) = (ins[0], ins[1]);
                if x != dy {
                    return Err(fail(format!("x{x}, dy{dy}")));
                }
                Ok(vec![Shape::new(vec![*x.dims().last().unwrap_or(&0)])])
            }
            Op::LayerNormGradBeta => {
                Ok(vec![Shape::new(vec![*ins[0].dims().last().unwrap_or(&0)])])
            }
            Op::Embedding => {
                let (table, ids) = (ins[0], ins[1]);
                if table.rank() != 2 || ids.rank() != 2 {
                    return Err(fail(format!("table{table}, ids{ids}")));
                }
                Ok(vec![Shape::new(vec![ids.dim(0), ids.dim(1), table.dim(1)])])
            }
            Op::EmbeddingGrad => {
                let (table, ids, dy) = (ins[0], ins[1], ins[2]);
                if dy.rank() != 3 || dy.dim(0) != ids.dim(0) || dy.dim(1) != ids.dim(1) {
                    return Err(fail(format!("ids{ids}, dy{dy}")));
                }
                Ok(vec![table.clone()])
            }
            Op::AttnScores { heads, .. } => {
                let (q, k) = (ins[0], ins[1]);
                // Sq ≤ Sk: queries are the trailing positions of the key
                // sequence (Sq < Sk is the KV-cached decode path).
                if q.rank() != 3
                    || k.rank() != 3
                    || q.dim(0) != k.dim(0)
                    || q.dim(2) != k.dim(2)
                    || q.dim(1) > k.dim(1)
                    || q.dim(2) % heads != 0
                {
                    return Err(fail(format!("q{q}, k{k}, heads {heads}")));
                }
                Ok(vec![Shape::new(vec![q.dim(0), *heads, q.dim(1), k.dim(1)])])
            }
            Op::AttnScoresGradQ { heads, .. } | Op::AttnScoresGradK { heads, .. } => {
                let (other, dy) = (ins[0], ins[1]);
                // Backward exists for training graphs only, which are
                // always full-sequence: reject Sq ≠ Sk explicitly rather
                // than silently producing a wrong-shaped gradient.
                if other.rank() != 3 || dy.rank() != 4 || dy.dim(1) != *heads || dy.dim(2) != dy.dim(3)
                {
                    return Err(fail(format!("in{other}, dy{dy}")));
                }
                Ok(vec![other.clone()])
            }
            Op::AttnContext { heads } => {
                let (p, v) = (ins[0], ins[1]);
                if p.rank() != 4
                    || v.rank() != 3
                    || p.dim(1) != *heads
                    || p.dim(0) != v.dim(0)
                    || p.dim(3) != v.dim(1)
                    || p.dim(2) > p.dim(3)
                {
                    return Err(fail(format!("p{p}, v{v}")));
                }
                Ok(vec![Shape::new(vec![v.dim(0), p.dim(2), v.dim(2)])])
            }
            Op::AttnContextGradP { heads } => {
                let (v, dy) = (ins[0], ins[1]);
                if v.rank() != 3 || dy != v {
                    return Err(fail(format!("v{v}, dy{dy}")));
                }
                Ok(vec![Shape::new(vec![v.dim(0), *heads, v.dim(1), v.dim(1)])])
            }
            Op::AttnContextGradV { .. } => {
                let (p, dy) = (ins[0], ins[1]);
                if p.rank() != 4 || dy.rank() != 3 {
                    return Err(fail(format!("p{p}, dy{dy}")));
                }
                Ok(vec![dy.clone()])
            }
            Op::CrossEntropy => {
                let (logits, targets) = (ins[0], ins[1]);
                if logits.rank() != 3 || targets.rank() != 2 || logits.dim(0) != targets.dim(0) {
                    return Err(fail(format!("logits{logits}, targets{targets}")));
                }
                Ok(vec![Shape::new(vec![1]), logits.clone()])
            }
            Op::CrossEntropyGrad => Ok(vec![ins[0].clone()]),
            Op::Gate { kind, experts, .. } => {
                let (x, wg) = (ins[0], ins[1]);
                if x.rank() != 3 || wg.rank() != 2 || wg.dim(0) != x.dim(2) || wg.dim(1) != *experts {
                    return Err(fail(format!("x{x}, wg{wg}")));
                }
                // Slots per token: k for token-choice gates, E for
                // expert-choice (any expert may pick any token).
                let per_token = if matches!(kind, GateKind::ExpertChoice) {
                    *experts
                } else {
                    kind.k().min(*experts)
                };
                let slots = x.dim(0) * x.dim(1) * per_token;
                Ok(vec![Shape::new(vec![slots]), Shape::new(vec![slots])])
            }
            Op::GateGradX { .. } => Ok(vec![ins[0].clone()]),
            Op::GateGradW { .. } => Ok(vec![ins[1].clone()]),
            Op::MoeDispatch { experts, capacity } => {
                let x = ins[0];
                if x.rank() != 3 {
                    return Err(fail(format!("x{x}")));
                }
                Ok(vec![Shape::new(vec![*experts, *capacity, x.dim(2)])])
            }
            Op::MoeDispatchGrad { batch, seq, .. } => {
                let dbuf = ins[1];
                if dbuf.rank() != 3 {
                    return Err(fail(format!("dbuf{dbuf}")));
                }
                Ok(vec![Shape::new(vec![*batch, *seq, dbuf.dim(2)])])
            }
            Op::MoeGather { batch, seq, .. } => {
                let buf = ins[0];
                if buf.rank() != 3 {
                    return Err(fail(format!("buf{buf}")));
                }
                Ok(vec![Shape::new(vec![*batch, *seq, buf.dim(2)])])
            }
            Op::MoeGatherGradBuf { experts, capacity } => {
                let dy = ins[2];
                if dy.rank() != 3 {
                    return Err(fail(format!("dy{dy}")));
                }
                Ok(vec![Shape::new(vec![*experts, *capacity, dy.dim(2)])])
            }
            Op::MoeGatherGradScale { .. } => {
                let assign = ins[1];
                Ok(vec![assign.clone()])
            }
            Op::ExpertsLayout { gpus } => {
                let b = ins[0];
                if b.rank() != 3 || !b.dim(0).is_multiple_of(*gpus) {
                    return Err(fail(format!("buf{b}, gpus {gpus}")));
                }
                Ok(vec![Shape::new(vec![b.dim(0) / gpus, gpus * b.dim(1), b.dim(2)])])
            }
            Op::ExpertsLayoutInv { gpus } => {
                let b = ins[0];
                if b.rank() != 3 || !b.dim(1).is_multiple_of(*gpus) {
                    return Err(fail(format!("buf{b}, gpus {gpus}")));
                }
                Ok(vec![Shape::new(vec![b.dim(0) * gpus, b.dim(1) / gpus, b.dim(2)])])
            }
            Op::AllToAll | Op::AllReduce => Ok(vec![ins[0].clone()]),
            Op::AllGather { gpus } => {
                let x = ins[0];
                if x.rank() < 1 {
                    return Err(fail("scalar shard".into()));
                }
                Ok(vec![x.with_dim(0, x.dim(0) * gpus)])
            }
            Op::ReduceScatter { gpus } => {
                let x = ins[0];
                if x.rank() < 1 || !x.dim(0).is_multiple_of(*gpus) {
                    return Err(fail(format!("{x} not shardable over {gpus}")));
                }
                Ok(vec![x.with_dim(0, x.dim(0) / gpus)])
            }
            Op::GateChunk { kind, experts, .. } => {
                let (x, wg, cap) = (ins[0], ins[1], ins[2]);
                if x.rank() != 3 || wg.rank() != 2 || cap.dims() != [*experts] {
                    return Err(fail(format!("x{x}, wg{wg}, cap{cap}")));
                }
                let slots = x.dim(0) * x.dim(1) * kind.k().min(*experts);
                Ok(vec![
                    Shape::new(vec![slots]),
                    Shape::new(vec![slots]),
                    Shape::new(vec![*experts]),
                ])
            }
            Op::MoeDispatchIrr { experts, capacity, .. } => {
                let x = ins[0];
                if x.rank() != 3 {
                    return Err(fail(format!("x{x}")));
                }
                Ok(vec![
                    Shape::new(vec![*experts, *capacity, x.dim(2)]),
                    Shape::new(vec![*experts]),
                ])
            }
            Op::MoeDispatchIrrGrad { batch, seq, .. } => {
                let dbuf = ins[1];
                Ok(vec![Shape::new(vec![*batch, *seq, dbuf.dim(2)])])
            }
            Op::AllToAllIrr => Ok(vec![ins[0].clone(), ins[1].clone()]),
            Op::MoeGatherIrr { batch, seq, .. } => {
                let buf = ins[0];
                Ok(vec![Shape::new(vec![*batch, *seq, buf.dim(2)])])
            }
            Op::MoeGatherIrrGradBuf { experts, capacity } => {
                let dy = ins[2];
                Ok(vec![Shape::new(vec![*experts, *capacity, dy.dim(2)])])
            }
            Op::Slice { axis, start, end } => {
                let x = ins[0];
                if *axis >= x.rank() || start >= end || *end > x.dim(*axis) {
                    return Err(fail(format!("slice {start}..{end} of {x} axis {axis}")));
                }
                Ok(vec![x.with_dim(*axis, end - start)])
            }
            Op::Concat { axis } => {
                let first = ins[0];
                if *axis >= first.rank() {
                    return Err(fail(format!("axis {axis} of {first}")));
                }
                let mut total = 0usize;
                for s in ins {
                    if s.rank() != first.rank()
                        || s.dims()
                            .iter()
                            .zip(first.dims())
                            .enumerate()
                            .any(|(i, (a, b))| i != *axis && a != b)
                    {
                        return Err(fail(format!("{s} vs {first}")));
                    }
                    total += s.dim(*axis);
                }
                Ok(vec![first.with_dim(*axis, total)])
            }
            Op::Pad { axis, before, after } => {
                let x = ins[0];
                if *axis >= x.rank() {
                    return Err(fail(format!("pad axis {axis} of {x}")));
                }
                Ok(vec![x.with_dim(*axis, x.dim(*axis) + before + after)])
            }
            Op::Zeros { shape } => Ok(vec![Shape::new(shape.clone())]),
        }
    }

    /// Floating-point operations performed (used by the cost model).
    pub fn flops(&self, ins: &[&Shape], outs: &[&Shape]) -> u64 {
        let vol = |s: &Shape| s.volume() as u64;
        match self {
            Op::MatMul { .. } => {
                let k = *ins[0].dims().last().unwrap_or(&1) as u64;
                2 * vol(outs[0]) * k
            }
            Op::MatMulDw => {
                let lead: u64 = ins[0].dims()[..ins[0].rank() - 1].iter().product::<usize>() as u64;
                2 * vol(outs[0]) * lead
            }
            Op::BatchedMatMul { .. } => {
                let k = ins[0].dim(2) as u64;
                2 * vol(outs[0]) * k
            }
            Op::BatchedMatMulDw => {
                let c = ins[0].dim(1) as u64;
                2 * vol(outs[0]) * c
            }
            Op::AttnScores { .. } => {
                // (B, h, S, S) output, each from a length-dh dot product.
                let dh = (ins[0].dim(2) / outs[0].dim(1)) as u64;
                2 * vol(outs[0]) * dh
            }
            Op::AttnScoresGradQ { .. } | Op::AttnScoresGradK { .. } => {
                let s = ins[1].dim(2) as u64;
                2 * vol(outs[0]) * s
            }
            Op::AttnContext { .. } => {
                let s = ins[0].dim(2) as u64;
                2 * vol(outs[0]) * s
            }
            Op::AttnContextGradP { .. } => {
                let dh = (ins[0].dim(2) / outs[0].dim(1)) as u64;
                2 * vol(outs[0]) * dh
            }
            Op::AttnContextGradV { .. } => {
                let s = ins[0].dim(2) as u64;
                2 * vol(outs[0]) * s
            }
            Op::CrossEntropy | Op::CrossEntropyGrad => 5 * vol(ins[0]),
            Op::Gate { .. } | Op::GateChunk { .. } => {
                // Gating projection (T,H)x(H,E) dominates.
                let t = (ins[0].dim(0) * ins[0].dim(1)) as u64;
                let h = ins[0].dim(2) as u64;
                let e = ins[1].dim(1) as u64;
                2 * t * h * e
            }
            Op::GateGradX { .. } | Op::GateGradW { .. } => {
                let t = (ins[0].dim(0) * ins[0].dim(1)) as u64;
                let h = ins[0].dim(2) as u64;
                let e = ins[1].dim(1) as u64;
                2 * t * h * e
            }
            Op::LayerNorm { .. } | Op::LayerNormGradX { .. } => 8 * vol(ins[0]),
            Op::LayerNormGradGamma { .. } | Op::LayerNormGradBeta => 2 * vol(ins[0]),
            Op::RmsNorm { .. } | Op::RmsNormGradX { .. } => 6 * vol(ins[0]),
            Op::RmsNormGradGamma { .. } => 2 * vol(ins[0]),
            Op::Silu | Op::SiluGrad => 8 * vol(ins[0]),
            Op::Softmax | Op::SoftmaxGrad => 4 * vol(ins[0]),
            Op::Gelu | Op::GeluGrad => 12 * vol(ins[0]),
            // Memory-movement / elementwise ops: ~1 flop per output element.
            _ => outs.iter().map(|s| vol(s)).sum(),
        }
    }

    /// Bytes read + written assuming 4-byte elements (used for the
    /// memory-bound side of the cost model).
    pub fn mem_bytes(&self, ins: &[&Shape], outs: &[&Shape]) -> u64 {
        let total: usize = ins.iter().map(|s| s.volume()).sum::<usize>()
            + outs.iter().map(|s| s.volume()).sum::<usize>();
        4 * total as u64
    }

    /// Bytes moved over the network per device for communication ops; zero
    /// for compute ops. For [`Op::AllToAllIrr`] this is the *maximum*
    /// (capacity-shaped) size — the simulator substitutes actual counts at
    /// run time.
    pub fn comm_bytes(&self, ins: &[&Shape]) -> u64 {
        match self {
            Op::AllToAll | Op::AllToAllIrr | Op::AllReduce => 4 * ins[0].volume() as u64,
            // Gather/scatter sizes are quoted as the *full* tensor volume.
            Op::AllGather { gpus } => 4 * (ins[0].volume() * gpus) as u64,
            Op::ReduceScatter { .. } => 4 * ins[0].volume() as u64,
            _ => 0,
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec())
    }

    #[test]
    fn matmul_shapes() {
        let op = Op::MatMul { transpose_b: false };
        let out = op.infer_shapes(&[&s(&[2, 4, 8]), &s(&[8, 3])]).unwrap();
        assert_eq!(out[0].dims(), &[2, 4, 3]);
        let op_t = Op::MatMul { transpose_b: true };
        let out = op_t.infer_shapes(&[&s(&[2, 4, 8]), &s(&[3, 8])]).unwrap();
        assert_eq!(out[0].dims(), &[2, 4, 3]);
        assert!(op.infer_shapes(&[&s(&[2, 4, 8]), &s(&[7, 3])]).is_err());
    }

    #[test]
    fn matmul_dw_contracts_leading() {
        let out = Op::MatMulDw.infer_shapes(&[&s(&[2, 4, 8]), &s(&[2, 4, 3])]).unwrap();
        assert_eq!(out[0].dims(), &[8, 3]);
    }

    #[test]
    fn batched_matmul_shapes() {
        let op = Op::BatchedMatMul { transpose_b: false };
        let out = op.infer_shapes(&[&s(&[4, 16, 8]), &s(&[4, 8, 32])]).unwrap();
        assert_eq!(out[0].dims(), &[4, 16, 32]);
        let dw = Op::BatchedMatMulDw.infer_shapes(&[&s(&[4, 16, 8]), &s(&[4, 16, 32])]).unwrap();
        assert_eq!(dw[0].dims(), &[4, 8, 32]);
    }

    #[test]
    fn attention_shapes() {
        let q = s(&[2, 6, 8]);
        let out = Op::AttnScores { heads: 2, causal: true }
            .infer_shapes(&[&q, &q])
            .unwrap();
        assert_eq!(out[0].dims(), &[2, 2, 6, 6]);
        let ctx = Op::AttnContext { heads: 2 }
            .infer_shapes(&[&out[0], &q])
            .unwrap();
        assert_eq!(ctx[0].dims(), &[2, 6, 8]);
        // Heads must divide hidden.
        assert!(Op::AttnScores { heads: 3, causal: false }.infer_shapes(&[&q, &q]).is_err());
    }

    #[test]
    fn attention_shapes_kv_cached_decode() {
        // Sq < Sk: one query position against a 6-position KV cache.
        let q = s(&[2, 1, 8]);
        let k = s(&[2, 6, 8]);
        let scores = Op::AttnScores { heads: 2, causal: true }.infer_shapes(&[&q, &k]).unwrap();
        assert_eq!(scores[0].dims(), &[2, 2, 1, 6]);
        let ctx = Op::AttnContext { heads: 2 }.infer_shapes(&[&scores[0], &k]).unwrap();
        assert_eq!(ctx[0].dims(), &[2, 1, 8]);
        // Queries cannot outnumber keys (they are the trailing positions).
        assert!(Op::AttnScores { heads: 2, causal: true }.infer_shapes(&[&k, &q]).is_err());
        // The backward ops stay full-sequence-only: a rectangular dy is
        // rejected, not silently mis-shaped.
        let dy = s(&[2, 2, 1, 6]);
        let kk = s(&[2, 6, 8]);
        assert!(Op::AttnScoresGradQ { heads: 2, causal: true }.infer_shapes(&[&kk, &dy]).is_err());
        assert!(Op::AttnScoresGradK { heads: 2, causal: true }.infer_shapes(&[&kk, &dy]).is_err());
    }

    #[test]
    fn gate_and_dispatch_shapes() {
        let x = s(&[2, 4, 8]);
        let wg = s(&[8, 4]);
        let outs = Op::Gate { kind: GateKind::Switch, experts: 4, capacity: 3 }
            .infer_shapes(&[&x, &wg])
            .unwrap();
        assert_eq!(outs[0].dims(), &[8]); // assign: T = 2*4
        assert_eq!(outs[1].dims(), &[8]);
        let buf = Op::MoeDispatch { experts: 4, capacity: 3 }
            .infer_shapes(&[&x, &outs[0], &outs[1]])
            .unwrap();
        assert_eq!(buf[0].dims(), &[4, 3, 8]);
        let y = Op::MoeGather { experts: 4, capacity: 3, batch: 2, seq: 4 }
            .infer_shapes(&[&buf[0], &outs[0], &outs[1]])
            .unwrap();
        assert_eq!(y[0].dims(), &[2, 4, 8]);
    }

    #[test]
    fn experts_layout_roundtrip_shape() {
        let buf = s(&[8, 6, 16]); // E=8, C=6, M=16, G=4 -> (2, 24, 16)
        let l = Op::ExpertsLayout { gpus: 4 }.infer_shapes(&[&buf]).unwrap();
        assert_eq!(l[0].dims(), &[2, 24, 16]);
        let inv = Op::ExpertsLayoutInv { gpus: 4 }.infer_shapes(&[&l[0]]).unwrap();
        assert_eq!(inv[0].dims(), &[8, 6, 16]);
    }

    #[test]
    fn gate_chunk_outputs_capacity_state() {
        let x = s(&[1, 4, 8]);
        let wg = s(&[8, 4]);
        let cap = s(&[4]);
        let outs = Op::GateChunk { kind: GateKind::Switch, experts: 4, capacity: 6, parts: 2 }
            .infer_shapes(&[&x, &wg, &cap])
            .unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[2].dims(), &[4]);
    }

    #[test]
    fn alltoall_preserves_shape() {
        let buf = s(&[8, 6, 16]);
        assert_eq!(Op::AllToAll.infer_shapes(&[&buf]).unwrap()[0], buf);
        let counts = s(&[8]);
        let outs = Op::AllToAllIrr.infer_shapes(&[&buf, &counts]).unwrap();
        assert_eq!(outs[0], buf);
        assert_eq!(outs[1], counts);
    }

    #[test]
    fn slice_concat_shapes() {
        let x = s(&[8, 4, 16]);
        let part = Op::Slice { axis: 0, start: 2, end: 5 }.infer_shapes(&[&x]).unwrap();
        assert_eq!(part[0].dims(), &[3, 4, 16]);
        let cat = Op::Concat { axis: 0 }
            .infer_shapes(&[&part[0], &x])
            .unwrap();
        assert_eq!(cat[0].dims(), &[11, 4, 16]);
        assert!(Op::Slice { axis: 0, start: 5, end: 5 }.infer_shapes(&[&x]).is_err());
    }

    #[test]
    fn arity_enforced() {
        let err = Op::Add.infer_shapes(&[&s(&[2])]).unwrap_err();
        assert!(matches!(err, IrError::ArityMismatch { .. }));
    }

    #[test]
    fn flops_scale_with_size() {
        let x = s(&[1, 16, 64]);
        let w = s(&[64, 64]);
        let op = Op::MatMul { transpose_b: false };
        let out = op.infer_shapes(&[&x, &w]).unwrap();
        let f = op.flops(&[&x, &w], &[&out[0]]);
        assert_eq!(f, 2 * 16 * 64 * 64);
    }

    #[test]
    fn comm_bytes_only_for_collectives() {
        let buf = s(&[8, 6, 16]);
        assert_eq!(Op::AllToAll.comm_bytes(&[&buf]), 4 * 8 * 6 * 16);
        assert_eq!(Op::Relu.comm_bytes(&[&buf]), 0);
        assert!(Op::AllToAll.is_comm());
        assert!(Op::AllToAllIrr.is_all_to_all());
        assert!(!Op::AllReduce.is_all_to_all());
    }

    #[test]
    fn zeros_has_no_inputs() {
        let outs = Op::Zeros { shape: vec![4] }.infer_shapes(&[]).unwrap();
        assert_eq!(outs[0].dims(), &[4]);
    }
}
