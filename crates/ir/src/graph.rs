//! The training graph: tensor definitions plus an instruction sequence.

use crate::{InstrId, IrError, Op, Result, Role, TensorId, TensorKind};
use lancet_tensor::Shape;
use std::collections::HashMap;

/// A tensor definition: static shape plus classification.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDef {
    /// The tensor's id within its graph.
    pub id: TensorId,
    /// Static shape.
    pub shape: Shape,
    /// Classification (input / weight / activation / gradient).
    pub kind: TensorKind,
    /// Debug name (not required to be unique).
    pub name: String,
}

impl TensorDef {
    /// Element count.
    pub fn volume(&self) -> usize {
        self.shape.volume()
    }

    /// Size in bytes assuming 4-byte elements.
    pub fn bytes(&self) -> u64 {
        4 * self.volume() as u64
    }
}

/// One instruction: an operator applied to input tensors, producing output
/// tensors. Instructions execute in sequence order; communication ops are
/// issued to the communication stream and only *synchronize* when a
/// dependent instruction runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Stable identity (survives reordering).
    pub id: InstrId,
    /// The operator.
    pub op: Op,
    /// Input tensor ids.
    pub inputs: Vec<TensorId>,
    /// Output tensor ids.
    pub outputs: Vec<TensorId>,
    /// Position in the training iteration (forward / dX / dW / comm / …).
    pub role: Role,
}

/// A training-iteration graph: the unit the Lancet passes transform.
///
/// The instruction list is a *program*: order matters. [`Graph::validate`]
/// checks the SSA-like invariants (single producer, definition before use).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    tensors: Vec<TensorDef>,
    instrs: Vec<Instr>,
    next_instr: u32,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of tensors defined.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// The instruction sequence in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// All tensor definitions.
    pub fn tensors(&self) -> &[TensorDef] {
        &self.tensors
    }

    /// Looks up a tensor definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this graph.
    pub fn tensor(&self, id: TensorId) -> &TensorDef {
        &self.tensors[id.0 as usize]
    }

    /// Looks up an instruction by id (not position).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this graph.
    pub fn instr(&self, id: InstrId) -> &Instr {
        self.instrs
            .iter()
            .find(|i| i.id == id)
            .expect("instruction id belongs to this graph")
    }

    /// Creates a new tensor definition and returns its id.
    pub fn add_tensor(&mut self, name: impl Into<String>, shape: impl Into<Shape>, kind: TensorKind) -> TensorId {
        let id = TensorId(self.tensors.len() as u32);
        self.tensors.push(TensorDef { id, shape: shape.into(), kind, name: name.into() });
        id
    }

    /// Declares a per-iteration model input.
    pub fn input(&mut self, name: impl Into<String>, shape: impl Into<Shape>) -> TensorId {
        self.add_tensor(name, shape, TensorKind::Input)
    }

    /// Declares a trainable weight.
    pub fn weight(&mut self, name: impl Into<String>, shape: impl Into<Shape>) -> TensorId {
        self.add_tensor(name, shape, TensorKind::Weight)
    }

    /// Appends an instruction, inferring output shapes, and returns the
    /// first output tensor id.
    ///
    /// # Errors
    ///
    /// Propagates shape/arity errors from [`Op::infer_shapes`]; returns
    /// [`IrError::UnknownTensor`] for foreign input ids.
    pub fn emit(&mut self, op: Op, inputs: &[TensorId], role: Role) -> Result<TensorId> {
        Ok(self.emit_multi(op, inputs, role)?[0])
    }

    /// [`Graph::emit`] returning every output tensor id.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::emit`].
    pub fn emit_multi(&mut self, op: Op, inputs: &[TensorId], role: Role) -> Result<Vec<TensorId>> {
        for &t in inputs {
            if t.0 as usize >= self.tensors.len() {
                return Err(IrError::UnknownTensor(t));
            }
        }
        let in_shapes: Vec<&Shape> = inputs.iter().map(|&t| &self.tensors[t.0 as usize].shape).collect();
        let out_shapes = op.infer_shapes(&in_shapes)?;
        let out_kind = match role {
            Role::Forward | Role::Comm | Role::Optimizer => TensorKind::Activation,
            Role::ActGrad => TensorKind::Gradient,
            Role::WeightGrad => TensorKind::WeightGrad,
        };
        let name = op.name();
        let outputs: Vec<TensorId> = out_shapes
            .into_iter()
            .enumerate()
            .map(|(i, s)| self.add_tensor(format!("{name}.{}.{i}", self.next_instr), s, out_kind))
            .collect();
        let id = InstrId(self.next_instr);
        self.next_instr += 1;
        self.instrs.push(Instr { id, op, inputs: inputs.to_vec(), outputs: outputs.clone(), role });
        Ok(outputs)
    }

    /// Map from tensor to the sequence position of its producing
    /// instruction (inputs and weights have no producer).
    pub fn producer_positions(&self) -> HashMap<TensorId, usize> {
        let mut m = HashMap::new();
        for (pos, instr) in self.instrs.iter().enumerate() {
            for &o in &instr.outputs {
                m.insert(o, pos);
            }
        }
        m
    }

    /// Map from tensor to the positions of every consuming instruction.
    pub fn user_positions(&self) -> HashMap<TensorId, Vec<usize>> {
        let mut m: HashMap<TensorId, Vec<usize>> = HashMap::new();
        for (pos, instr) in self.instrs.iter().enumerate() {
            for &t in &instr.inputs {
                m.entry(t).or_default().push(pos);
            }
        }
        m
    }

    /// Checks the program invariants: every consumed tensor is defined,
    /// produced at most once, and produced *before* its first use.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        let mut produced_at: HashMap<TensorId, usize> = HashMap::new();
        for (pos, instr) in self.instrs.iter().enumerate() {
            for &o in &instr.outputs {
                if produced_at.insert(o, pos).is_some() {
                    return Err(IrError::MultipleProducers(o));
                }
            }
        }
        for (pos, instr) in self.instrs.iter().enumerate() {
            for &t in &instr.inputs {
                if t.0 as usize >= self.tensors.len() {
                    return Err(IrError::UnknownTensor(t));
                }
                match self.tensors[t.0 as usize].kind {
                    TensorKind::Input | TensorKind::Weight => continue,
                    _ => {}
                }
                match produced_at.get(&t) {
                    None => return Err(IrError::UseBeforeDef { instr: instr.id, tensor: t }),
                    Some(&p) if p >= pos => {
                        return Err(IrError::UseBeforeDef { instr: instr.id, tensor: t })
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Replaces the instruction sequence with a reordering of the same
    /// instructions.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidTransform`] if `order` is not a
    /// permutation of the current sequence, or if the reordered program
    /// fails [`Graph::validate`].
    pub fn reorder(&mut self, order: Vec<InstrId>) -> Result<()> {
        if order.len() != self.instrs.len() {
            return Err(IrError::InvalidTransform(format!(
                "reorder length {} != {}",
                order.len(),
                self.instrs.len()
            )));
        }
        let snapshot = self.instrs.clone();
        let mut by_id: HashMap<InstrId, Instr> =
            self.instrs.drain(..).map(|i| (i.id, i)).collect();
        let mut new_instrs = Vec::with_capacity(order.len());
        for id in order {
            match by_id.remove(&id) {
                Some(i) => new_instrs.push(i),
                None => {
                    // Restore the original program exactly before failing.
                    self.instrs = snapshot;
                    return Err(IrError::InvalidTransform(format!(
                        "instruction {id} missing or duplicated in reorder"
                    )));
                }
            }
        }
        self.instrs = new_instrs;
        if let Err(e) = self.validate() {
            // An invalid permutation must not corrupt the graph.
            self.instrs = snapshot;
            return Err(e);
        }
        Ok(())
    }

    /// Keeps only the given instructions (a subsequence of the current
    /// program, by id) and drops the rest.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidTransform`] if an id is unknown, or
    /// validation fails afterwards (a surviving instruction consumed a
    /// dropped instruction's output).
    pub fn retain_instrs(&mut self, keep: &[InstrId]) -> Result<()> {
        let keep_set: std::collections::HashSet<InstrId> = keep.iter().copied().collect();
        if keep_set.len() != keep.len() {
            return Err(IrError::InvalidTransform("duplicate ids in retain set".into()));
        }
        let before = self.instrs.len();
        let drained: Vec<Instr> = self.instrs.drain(..).collect();
        self.instrs = drained.into_iter().filter(|i| keep_set.contains(&i.id)).collect();
        if self.instrs.len() != keep.len() {
            let kept = self.instrs.len();
            return Err(IrError::InvalidTransform(format!(
                "retained {kept} of {} requested ids (program had {before})",
                keep.len()
            )));
        }
        self.validate()
    }

    /// Total number of weight elements (for memory/parameter statistics).
    pub fn weight_volume(&self) -> usize {
        self.tensors
            .iter()
            .filter(|t| t.kind == TensorKind::Weight)
            .map(TensorDef::volume)
            .sum()
    }

    /// All weight tensor ids in definition order.
    pub fn weights(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .filter(|t| t.kind == TensorKind::Weight)
            .map(|t| t.id)
            .collect()
    }

    /// All input tensor ids in definition order.
    pub fn inputs(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .filter(|t| t.kind == TensorKind::Input)
            .map(|t| t.id)
            .collect()
    }

    /// Positions of all all-to-all instructions in program order.
    pub fn all_to_all_positions(&self) -> Vec<usize> {
        self.instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.op.is_all_to_all())
            .map(|(p, _)| p)
            .collect()
    }

    /// Positions of all weight-gradient instructions in program order.
    pub fn weight_grad_positions(&self) -> Vec<usize> {
        self.instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.role.is_weight_grad())
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_graph() -> (Graph, TensorId, TensorId) {
        let mut g = Graph::new();
        let x = g.input("x", vec![4, 8]);
        let w = g.weight("w", vec![8, 2]);
        (g, x, w)
    }

    #[test]
    fn emit_infers_shapes() {
        let (mut g, x, w) = simple_graph();
        let y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        assert_eq!(g.tensor(y).shape.dims(), &[4, 2]);
        assert_eq!(g.instrs().len(), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn emit_rejects_unknown_tensor() {
        let (mut g, x, _) = simple_graph();
        let foreign = TensorId(999);
        assert!(matches!(
            g.emit(Op::Add, &[x, foreign], Role::Forward),
            Err(IrError::UnknownTensor(_))
        ));
    }

    #[test]
    fn validate_catches_use_before_def() {
        let (mut g, x, w) = simple_graph();
        let y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let z = g.emit(Op::Relu, &[y], Role::Forward).unwrap();
        let _ = z;
        // Swap the instructions by hand to break ordering.
        let ids: Vec<InstrId> = g.instrs().iter().map(|i| i.id).collect();
        let err = g.reorder(vec![ids[1], ids[0]]).unwrap_err();
        assert!(matches!(err, IrError::UseBeforeDef { .. }));
    }

    #[test]
    fn reorder_valid_permutation() {
        let (mut g, x, w) = simple_graph();
        // Two independent matmuls can swap.
        let _a = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let _b = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let ids: Vec<InstrId> = g.instrs().iter().map(|i| i.id).collect();
        assert!(g.reorder(vec![ids[1], ids[0]]).is_ok());
        assert_eq!(g.instrs()[0].id, ids[1]);
    }

    #[test]
    fn reorder_rejects_bad_permutation() {
        let (mut g, x, w) = simple_graph();
        let _ = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let err = g.reorder(vec![]).unwrap_err();
        assert!(matches!(err, IrError::InvalidTransform(_)));
    }

    #[test]
    fn weight_volume_counts_weights_only() {
        let (mut g, x, w) = simple_graph();
        let _ = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        assert_eq!(g.weight_volume(), 16);
        assert_eq!(g.weights(), vec![w]);
        assert_eq!(g.inputs(), vec![x]);
    }

    #[test]
    fn role_position_queries() {
        let (mut g, x, w) = simple_graph();
        let y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let dy = g.emit(Op::Relu, &[y], Role::ActGrad).unwrap();
        let _dw = g.emit(Op::MatMulDw, &[x, dy], Role::WeightGrad).unwrap();
        assert_eq!(g.weight_grad_positions(), vec![2]);
        assert!(g.all_to_all_positions().is_empty());
    }

    #[test]
    fn producer_and_user_maps() {
        let (mut g, x, w) = simple_graph();
        let y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let _z = g.emit(Op::Relu, &[y], Role::Forward).unwrap();
        let prod = g.producer_positions();
        assert_eq!(prod[&y], 0);
        let users = g.user_positions();
        assert_eq!(users[&y], vec![1]);
        assert_eq!(users[&x], vec![0]);
    }
}
