//! Instruction dependency graph and reachability analysis.
//!
//! This is the machinery behind the paper's weight-gradient *labelling*
//! step (§4.1): a dW instruction may overlap an all-to-all iff no directed
//! path connects them in either direction.

use crate::Graph;
use std::collections::HashMap;

/// A dense bitset over instruction positions.
#[derive(Debug, Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Dependency structure of a [`Graph`]'s instruction sequence, indexed by
/// *position* in program order.
///
/// Edges run producer → consumer. Reachability (`reaches`) is precomputed
/// as a transitive closure over the program-order DAG, so queries are O(1).
///
/// # Example
///
/// ```
/// use lancet_ir::{DepGraph, Graph, Op, Role};
///
/// let mut g = Graph::new();
/// let x = g.input("x", vec![2, 4]);
/// let w = g.weight("w", vec![4, 4]);
/// let y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward)?;
/// let _z = g.emit(Op::Relu, &[y], Role::Forward)?;
/// let _u = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward)?;
/// let dep = DepGraph::build(&g);
/// assert!(dep.reaches(0, 1));      // matmul feeds relu
/// assert!(dep.independent(1, 2));  // relu and the second matmul are unordered
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
#[derive(Debug)]
pub struct DepGraph {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    /// descendants[i] = positions reachable from i via one or more edges.
    descendants: Vec<BitSet>,
}

impl DepGraph {
    /// Builds the dependency graph of `g`'s current instruction sequence.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not in definition-before-use order (call
    /// [`Graph::validate`] first).
    pub fn build(g: &Graph) -> Self {
        let n = g.instrs().len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut producer: HashMap<crate::TensorId, usize> = HashMap::new();
        for (pos, instr) in g.instrs().iter().enumerate() {
            for &t in &instr.inputs {
                if let Some(&p) = producer.get(&t) {
                    assert!(p < pos, "graph must be in def-before-use order");
                    preds[pos].push(p);
                    succs[p].push(pos);
                }
            }
            for &o in &instr.outputs {
                producer.insert(o, pos);
            }
        }
        for v in preds.iter_mut().chain(succs.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        // Transitive closure, walking backwards so successors are final.
        let mut descendants: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for i in (0..n).rev() {
            // Split at i+1 so we can read descendants[j] (j > i) while
            // mutating descendants[i].
            let (head, tail) = descendants.split_at_mut(i + 1);
            let di = &mut head[i];
            for &j in &succs[i] {
                di.set(j);
                di.union_with(&tail[j - i - 1]);
            }
        }
        DepGraph { preds, succs, descendants }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True if the graph has no instructions.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Direct producers of instruction at position `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct consumers of instruction at position `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// True if there is a directed path from `from` to `to`.
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        from != to && self.descendants[from].get(to)
    }

    /// True if no directed path connects `a` and `b` in either direction —
    /// the paper's condition for a dW op to overlap an all-to-all.
    pub fn independent(&self, a: usize, b: usize) -> bool {
        a != b && !self.reaches(a, b) && !self.reaches(b, a)
    }

    /// All transitive producers of `i` (positions, ascending).
    pub fn ancestors(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for j in 0..i {
            if self.reaches(j, i) {
                out.push(j);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Role};

    /// Chain x -> a -> b, plus independent c.
    fn chain_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", vec![2, 4]);
        let w = g.weight("w", vec![4, 4]);
        let a = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let _b = g.emit(Op::Relu, &[a], Role::Forward).unwrap();
        let _c = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        g
    }

    #[test]
    fn direct_edges() {
        let g = chain_graph();
        let d = DepGraph::build(&g);
        assert_eq!(d.succs(0), &[1]);
        assert_eq!(d.preds(1), &[0]);
        assert!(d.preds(2).is_empty());
    }

    #[test]
    fn reachability_is_transitive() {
        let mut g = Graph::new();
        let x = g.input("x", vec![2, 4]);
        let w = g.weight("w", vec![4, 4]);
        let a = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let b = g.emit(Op::Relu, &[a], Role::Forward).unwrap();
        let _c = g.emit(Op::Relu, &[b], Role::Forward).unwrap();
        let d = DepGraph::build(&g);
        assert!(d.reaches(0, 2));
        assert!(!d.reaches(2, 0));
        assert!(!d.reaches(0, 0));
    }

    #[test]
    fn independence_is_symmetric() {
        let g = chain_graph();
        let d = DepGraph::build(&g);
        assert!(d.independent(1, 2));
        assert!(d.independent(2, 1));
        assert!(!d.independent(0, 1));
        assert!(!d.independent(1, 1));
    }

    #[test]
    fn ancestors_collects_transitive_producers() {
        let mut g = Graph::new();
        let x = g.input("x", vec![2, 4]);
        let w = g.weight("w", vec![4, 4]);
        let a = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let b = g.emit(Op::Relu, &[a], Role::Forward).unwrap();
        let _c = g.emit(Op::Gelu, &[b], Role::Forward).unwrap();
        let d = DepGraph::build(&g);
        assert_eq!(d.ancestors(2), vec![0, 1]);
        assert!(d.ancestors(0).is_empty());
    }

    #[test]
    fn empty_graph() {
        let d = DepGraph::build(&Graph::new());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
