//! Property-based tests for IR invariants: dependency reachability,
//! reorder validity, and autodiff completeness.

use lancet_ir::{build_backward, BackwardOptions, DepGraph, Graph, Op, Role, TensorId};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Builds a random layered elementwise DAG: `n` unary/binary ops over a
/// growing pool of tensors (always valid, def-before-use by construction).
fn random_graph(ops: &[u8]) -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![4, 4]);
    let mut pool: Vec<TensorId> = vec![x];
    for (i, &b) in ops.iter().enumerate() {
        let a = pool[(b as usize) % pool.len()];
        let out = match b % 3 {
            0 => g.emit(Op::Relu, &[a], Role::Forward).unwrap(),
            1 => g.emit(Op::Gelu, &[a], Role::Forward).unwrap(),
            _ => {
                let c = pool[(b as usize / 3) % pool.len()];
                g.emit(Op::Add, &[a, c], Role::Forward).unwrap()
            }
        };
        let _ = i;
        pool.push(out);
    }
    g
}

/// Naive BFS reachability over the instruction dependency edges.
fn naive_reaches(g: &Graph, from: usize, to: usize) -> bool {
    let producers = g.producer_positions();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); g.instrs().len()];
    for (pos, instr) in g.instrs().iter().enumerate() {
        for t in &instr.inputs {
            if let Some(&p) = producers.get(t) {
                succs[p].push(pos);
            }
        }
    }
    let mut seen = vec![false; g.instrs().len()];
    let mut q = VecDeque::from([from]);
    while let Some(n) = q.pop_front() {
        for &s in &succs[n] {
            if s == to {
                return true;
            }
            if !seen[s] {
                seen[s] = true;
                q.push_back(s);
            }
        }
    }
    false
}

proptest! {
    /// The bitset transitive closure agrees with naive BFS on every pair.
    #[test]
    fn reachability_matches_bfs(ops in prop::collection::vec(any::<u8>(), 1..25)) {
        let g = random_graph(&ops);
        let dep = DepGraph::build(&g);
        let n = g.instrs().len();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    dep.reaches(a, b),
                    a != b && naive_reaches(&g, a, b),
                    "pair ({}, {})", a, b
                );
            }
        }
    }

    /// Independence is symmetric and irreflexive.
    #[test]
    fn independence_properties(ops in prop::collection::vec(any::<u8>(), 1..25)) {
        let g = random_graph(&ops);
        let dep = DepGraph::build(&g);
        let n = g.instrs().len();
        for a in 0..n {
            prop_assert!(!dep.independent(a, a));
            for b in 0..n {
                prop_assert_eq!(dep.independent(a, b), dep.independent(b, a));
            }
        }
    }

    /// Reversing the program order of a non-trivial graph is rejected by
    /// validation whenever a true dependency exists.
    #[test]
    fn reversal_caught_when_dependent(ops in prop::collection::vec(any::<u8>(), 2..20)) {
        let g = random_graph(&ops);
        let dep = DepGraph::build(&g);
        let n = g.instrs().len();
        let any_dep = (0..n).any(|i| !dep.succs(i).is_empty());
        let mut g2 = g.clone();
        let order: Vec<_> = g.instrs().iter().rev().map(|i| i.id).collect();
        let result = g2.reorder(order);
        if any_dep {
            prop_assert!(result.is_err());
        } else {
            prop_assert!(result.is_ok());
        }
    }

    /// Autodiff of a random dense model yields a gradient for every
    /// weight on a differentiable path, with matching shapes.
    #[test]
    fn autodiff_covers_all_weights(layers in 1usize..5, hidden in 1usize..4) {
        let h = hidden * 4;
        let mut g = Graph::new();
        let ids = g.input("ids", vec![2, 3]);
        let targets = g.input("targets", vec![2, 3]);
        let table = g.weight("wte", vec![5, h]);
        let mut x = g.emit(Op::Embedding, &[table, ids], Role::Forward).unwrap();
        let mut weights = vec![table];
        for l in 0..layers {
            let w = g.weight(format!("w{l}"), vec![h, h]);
            weights.push(w);
            let y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
            let y = g.emit(Op::Gelu, &[y], Role::Forward).unwrap();
            x = g.emit(Op::Add, &[x, y], Role::Forward).unwrap();
        }
        let lm = g.weight("lm", vec![h, 5]);
        weights.push(lm);
        let logits = g.emit(Op::MatMul { transpose_b: false }, &[x, lm], Role::Forward).unwrap();
        let _ = g.emit_multi(Op::CrossEntropy, &[logits, targets], Role::Forward).unwrap();
        let grads = build_backward(&mut g, &BackwardOptions::default()).unwrap();
        prop_assert!(g.validate().is_ok());
        for w in weights {
            let dw = grads.get(&w).copied();
            prop_assert!(dw.is_some(), "no grad for {}", g.tensor(w).name);
            prop_assert_eq!(&g.tensor(dw.unwrap()).shape, &g.tensor(w).shape);
        }
    }

    /// Shape inference is deterministic and emit never corrupts validity.
    #[test]
    fn emit_preserves_validity(ops in prop::collection::vec(any::<u8>(), 1..40)) {
        let g = random_graph(&ops);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.instrs().len(), ops.len());
    }
}
