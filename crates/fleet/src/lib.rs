//! `lancet-fleet`: a front-end that shards traffic across N replica
//! [`ServeRuntime`]s.
//!
//! One [`ServeRuntime`] is a single "machine": its own worker pool, plan
//! cache, and bounded admission queue. A [`Fleet`] stands in front of N
//! of them and adds the three behaviours a multi-replica deployment
//! needs:
//!
//! 1. **Consistent routing.** Each request is routed by the *stable*
//!    hash of its [`PlanKey`] ([`PlanKey::stable_hash`] — never
//!    `RandomState`, which differs per process) through
//!    highest-random-weight hashing over the healthy replicas. Requests
//!    that would share a cached plan land on the same replica, so the
//!    fleet-wide plan-cache hit rate matches a single runtime's instead
//!    of degrading by 1/N, and removing a replica only re-routes the
//!    keys that lived there.
//! 2. **Work stealing.** Consistent routing concentrates load under
//!    skewed traffic. When the routed replica's admission queue runs
//!    [`FleetConfig::steal_threshold`] deeper than the least-loaded
//!    healthy replica's, the request goes to the least-loaded one
//!    instead (counted in [`FleetStats::stolen`]). Admission stays
//!    bounded per replica: when every healthy replica is full the
//!    caller sees the same typed [`ServeError::Overloaded`] a single
//!    runtime gives.
//! 3. **Crash fail-over.** [`Fleet::crash`] kills a replica abruptly
//!    (its queued requests are answered [`ServeError::Crashed`]).
//!    [`FleetTicket::wait`] treats that answer as retriable and
//!    resubmits through the surviving replicas, so an admitted request
//!    is never lost — the chaos gate asserts zero.
//!
//! Replica inference is deterministic (same request → same bits on any
//! replica), which is what makes crash re-execution safe: a re-routed
//! request can only ever observe one answer value.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use lancet_models::GptMoeConfig;
use lancet_serve::{
    CanonicalWeights, PackSet, PlanKey, Result, ServeConfig, ServeError, ServeRuntime,
    ServeStats, Ticket,
};
use lancet_tensor::Tensor;

/// Fallback replica count when neither [`FleetConfig::replicas`] nor
/// `LANCET_REPLICAS` specifies one.
const DEFAULT_REPLICAS: usize = 2;

/// `LANCET_REPLICAS`, parsed per call. Unset, empty, unparsable, or `0`
/// all mean "use the default".
fn env_replicas() -> Option<usize> {
    std::env::var("LANCET_REPLICAS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Fleet knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Replica count. `0` reads `LANCET_REPLICAS`, falling back to 2.
    pub replicas: usize,
    /// Per-replica runtime configuration (every replica is identical).
    pub serve: ServeConfig,
    /// How much deeper (in queued requests) the routed replica may run
    /// than the least-loaded healthy replica before the request is
    /// stolen. Small values spread load aggressively at the cost of
    /// plan-cache locality; `usize::MAX` disables stealing.
    pub steal_threshold: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { replicas: 0, serve: ServeConfig::default(), steal_threshold: 4 }
    }
}

/// Fleet-wide statistics: the merged view plus the per-replica pieces.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// All replicas merged through [`ServeStats::merge`] — counters
    /// summed, percentiles recomputed over the pooled latency windows.
    pub merged: ServeStats,
    /// Each replica's own snapshot, fleet index order.
    pub per_replica: Vec<ServeStats>,
    /// Requests re-submitted to a surviving replica after their first
    /// replica crashed with them queued.
    pub rerouted: u64,
    /// Requests steered away from their routed replica (work stealing,
    /// or overflow from a replica at its admission bound).
    pub stolen: u64,
    /// Healthy (not crashed) replicas right now.
    pub healthy: usize,
}

struct Inner {
    replicas: Vec<Arc<ServeRuntime>>,
    healthy: Vec<AtomicBool>,
    serve: ServeConfig,
    /// Per-model routing key: the stable hash of the [`PlanKey`] the
    /// model's full batches plan under. One key per model keeps all of a
    /// model's traffic (and therefore all its plan-cache entries) on one
    /// replica — exactly what maximizes the fleet-wide hit rate.
    routes: RwLock<HashMap<String, u64>>,
    steal_threshold: usize,
    rerouted: AtomicU64,
    stolen: AtomicU64,
}

/// A multi-replica serving fleet. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Fleet {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("replicas", &self.inner.replicas.len())
            .field("healthy", &self.healthy())
            .finish()
    }
}

/// A claim on one fleet request's response. Unlike a plain [`Ticket`],
/// waiting re-routes through a surviving replica when the original one
/// crashed — the caller never sees [`ServeError::Crashed`].
#[must_use = "an unawaited ticket discards its response"]
#[derive(Debug)]
pub struct FleetTicket {
    fleet: Fleet,
    ticket: Ticket,
    model: String,
    ids: Vec<f32>,
}

impl FleetTicket {
    /// Blocks until the response arrives, transparently resubmitting to
    /// a healthy replica if the serving one crashes first.
    ///
    /// # Errors
    ///
    /// Everything [`Fleet::submit`] rejects with, plus execution-time
    /// failures — but never [`ServeError::Crashed`].
    pub fn wait(mut self) -> Result<Tensor> {
        loop {
            match self.ticket.wait() {
                Err(ServeError::Crashed) => {
                    self.fleet.inner.rerouted.fetch_add(1, Ordering::Relaxed);
                    self.ticket = self.fleet.submit_ticket(&self.model, self.ids.clone())?;
                }
                other => return other,
            }
        }
    }
}

impl Fleet {
    /// Starts `config.replicas` identical [`ServeRuntime`]s.
    pub fn start(config: FleetConfig) -> Fleet {
        let n = if config.replicas > 0 {
            config.replicas
        } else {
            env_replicas().unwrap_or(DEFAULT_REPLICAS)
        };
        let replicas: Vec<_> =
            (0..n).map(|_| ServeRuntime::start(config.serve.clone())).collect();
        let healthy = (0..n).map(|_| AtomicBool::new(true)).collect();
        Fleet {
            inner: Arc::new(Inner {
                replicas,
                healthy,
                serve: config.serve,
                routes: RwLock::new(HashMap::new()),
                steal_threshold: config.steal_threshold,
                rerouted: AtomicU64::new(0),
                stolen: AtomicU64::new(0),
            }),
        }
    }

    /// Registers `cfg` on every replica (generated canonical weights,
    /// replicated N times).
    ///
    /// # Errors
    ///
    /// As [`ServeRuntime::register_model`]; a failure on any replica
    /// fails the registration.
    pub fn register_model(&self, cfg: GptMoeConfig) -> Result<()> {
        for r in &self.inner.replicas {
            r.register_model(cfg.clone())?;
        }
        self.record_route(&cfg);
        Ok(())
    }

    /// Registers `cfg` on every replica with caller-supplied weights —
    /// the model-store path. Cloning the weights per replica is an
    /// `Arc` bump per tensor when they came from a mapped store, so N
    /// replicas share one copy of the pages.
    ///
    /// # Errors
    ///
    /// As [`ServeRuntime::register_model_with_weights`].
    pub fn register_model_with_weights(
        &self,
        cfg: GptMoeConfig,
        canonical: &CanonicalWeights,
        packs: Option<&PackSet>,
    ) -> Result<()> {
        for r in &self.inner.replicas {
            r.register_model_with_weights(cfg.clone(), canonical.clone(), packs.cloned())?;
        }
        self.record_route(&cfg);
        Ok(())
    }

    /// Pre-builds `model`'s execution plans on every replica (see
    /// [`ServeRuntime::warm_model`]): with stealing enabled any replica
    /// can serve any model, so a cold plan cache anywhere turns into
    /// tail latency for somebody.
    ///
    /// # Errors
    ///
    /// As [`ServeRuntime::warm_model`] — the first failing replica aborts
    /// the warmup.
    pub fn warm(&self, model: &str) -> Result<()> {
        for r in &self.inner.replicas {
            r.warm_model(model)?;
        }
        Ok(())
    }

    /// Computes and stores the model's routing key: the stable hash of
    /// the plan key its full batches resolve to.
    fn record_route(&self, cfg: &GptMoeConfig) {
        let key = PlanKey {
            model: cfg.name.clone(),
            bucket: self.inner.serve.max_batch.max(1).next_power_of_two(),
            seq: cfg.seq,
            cluster: self.inner.serve.cluster,
            gpus: cfg.gpus,
        };
        self.inner
            .routes
            .write()
            .expect("routes lock")
            .insert(cfg.name.clone(), key.stable_hash());
    }

    /// The replica index `model`'s traffic routes to right now (healthy
    /// set + stable hash). Exposed for tests and operational tooling.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if `model` was never registered;
    /// [`ServeError::ShuttingDown`] if no healthy replica remains.
    pub fn route_of(&self, model: &str) -> Result<usize> {
        let key = self.route_key(model)?;
        self.route_hash(key).ok_or(ServeError::ShuttingDown)
    }

    fn route_key(&self, model: &str) -> Result<u64> {
        self.inner
            .routes
            .read()
            .expect("routes lock")
            .get(model)
            .copied()
            .ok_or_else(|| ServeError::UnknownModel(model.into()))
    }

    /// Highest-random-weight choice over the healthy replicas: each
    /// replica scores `mix(key, index)` and the max wins. Stable across
    /// processes, and removing a replica re-routes only its keys.
    fn route_hash(&self, key: u64) -> Option<usize> {
        (0..self.inner.replicas.len())
            .filter(|&i| self.inner.healthy[i].load(Ordering::Acquire))
            .max_by_key(|&i| hrw_score(key, i as u64))
    }

    /// Submits one request, routing by the model's stable plan key with
    /// work stealing under skew.
    ///
    /// # Errors
    ///
    /// As [`ServeRuntime::submit`]; [`ServeError::Overloaded`] only when
    /// every healthy replica is at its admission bound, and
    /// [`ServeError::ShuttingDown`] when no healthy replica remains.
    pub fn submit(&self, model: &str, ids: Vec<f32>) -> Result<FleetTicket> {
        let ticket = self.submit_ticket(model, ids.clone())?;
        Ok(FleetTicket { fleet: self.clone(), ticket, model: model.into(), ids })
    }

    /// [`submit`](Self::submit), then block for the response.
    ///
    /// # Errors
    ///
    /// Everything `submit` rejects with, plus execution-time failures.
    pub fn submit_blocking(&self, model: &str, ids: Vec<f32>) -> Result<Tensor> {
        self.submit(model, ids)?.wait()
    }

    fn submit_ticket(&self, model: &str, ids: Vec<f32>) -> Result<Ticket> {
        let key = self.route_key(model)?;
        // One iteration per replica bounds the crash-race retry loop: a
        // submit can only fail with `Crashed` by losing a race with that
        // replica's crash, which also unroutes it.
        for _ in 0..self.inner.replicas.len() {
            let Some(routed) = self.route_hash(key) else { break };
            let target = self.steal_target(routed);
            match self.inner.replicas[target].submit(model, ids.clone()) {
                Ok(ticket) => {
                    if target != routed {
                        self.inner.stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(ticket);
                }
                Err(ServeError::Crashed) => {
                    self.inner.healthy[target].store(false, Ordering::Release);
                }
                Err(ServeError::Overloaded { depth }) => {
                    // The bound is per replica; only give up once no
                    // healthy replica can admit. Overflow to the
                    // emptiest one that still has room.
                    return match self.least_loaded_admitting(target) {
                        Some(alt) => {
                            let ticket = self.inner.replicas[alt].submit(model, ids)?;
                            self.inner.stolen.fetch_add(1, Ordering::Relaxed);
                            Ok(ticket)
                        }
                        None => Err(ServeError::Overloaded { depth }),
                    };
                }
                Err(other) => return Err(other),
            }
        }
        Err(ServeError::ShuttingDown)
    }

    /// The replica to actually submit to: the routed one, unless its
    /// queue runs `steal_threshold` deeper than the least-loaded healthy
    /// replica's.
    fn steal_target(&self, routed: usize) -> usize {
        if self.inner.steal_threshold == usize::MAX || self.inner.replicas.len() == 1 {
            return routed;
        }
        let routed_len = self.inner.replicas[routed].queue_len();
        let mut best = routed;
        let mut best_len = routed_len;
        for (i, r) in self.inner.replicas.iter().enumerate() {
            if i != routed && self.inner.healthy[i].load(Ordering::Acquire) {
                let len = r.queue_len();
                if len < best_len {
                    best = i;
                    best_len = len;
                }
            }
        }
        if best != routed && routed_len >= best_len.saturating_add(self.inner.steal_threshold) {
            best
        } else {
            routed
        }
    }

    /// The healthy replica (≠ `not`) with the shortest queue that still
    /// has admission room, if any.
    fn least_loaded_admitting(&self, not: usize) -> Option<usize> {
        self.inner
            .replicas
            .iter()
            .enumerate()
            .filter(|&(i, r)| {
                i != not
                    && self.inner.healthy[i].load(Ordering::Acquire)
                    && r.queue_len() < r.queue_capacity()
            })
            .min_by_key(|&(_, r)| r.queue_len())
            .map(|(i, _)| i)
    }

    /// Kills replica `index` abruptly ([`ServeRuntime::crash`]): it is
    /// removed from routing, its queued requests are answered
    /// [`ServeError::Crashed`], and fleet tickets waiting on them
    /// resubmit to the survivors. No-op on an out-of-range index.
    pub fn crash(&self, index: usize) {
        let Some(flag) = self.inner.healthy.get(index) else { return };
        // Unroute first, so resubmissions can't land back on the corpse.
        flag.store(false, Ordering::Release);
        self.inner.replicas[index].crash();
    }

    /// Healthy (not crashed) replica count.
    pub fn healthy(&self) -> usize {
        self.inner.healthy.iter().filter(|h| h.load(Ordering::Acquire)).count()
    }

    /// Total replica count (healthy or not).
    pub fn replicas(&self) -> usize {
        self.inner.replicas.len()
    }

    /// A point-in-time fleet snapshot: merged + per-replica stats.
    pub fn stats(&self) -> FleetStats {
        let per_replica: Vec<ServeStats> =
            self.inner.replicas.iter().map(|r| r.stats()).collect();
        FleetStats {
            merged: ServeStats::merge(&per_replica),
            per_replica,
            rerouted: self.inner.rerouted.load(Ordering::Relaxed),
            stolen: self.inner.stolen.load(Ordering::Relaxed),
            healthy: self.healthy(),
        }
    }

    /// Shuts every replica down gracefully (queued work executes).
    pub fn shutdown(&self) {
        for r in &self.inner.replicas {
            r.shutdown();
        }
    }
}

/// The per-replica score for highest-random-weight routing: a
/// SplitMix64-style mix of the routing key and the replica index.
/// Deterministic across processes by construction.
fn hrw_score(key: u64, replica: u64) -> u64 {
    let mut h = key ^ replica.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hrw_is_deterministic_and_spreads() {
        // Same (key, replica) → same score; across many keys, a 4-way
        // fleet sees every replica win sometimes.
        assert_eq!(hrw_score(42, 3), hrw_score(42, 3));
        let mut wins = [0usize; 4];
        for key in 0..256u64 {
            let best = (0..4).max_by_key(|&i| hrw_score(key.wrapping_mul(0x9E37), i)).unwrap();
            wins[best as usize] += 1;
        }
        assert!(wins.iter().all(|&w| w > 16), "skewed HRW wins: {wins:?}");
    }

    #[test]
    fn removing_a_replica_only_moves_its_keys() {
        // The HRW property the fleet relies on for crash fail-over:
        // keys not routed to the removed replica keep their placement.
        for key in 0..512u64 {
            let all: usize = (0..4).max_by_key(|&i| hrw_score(key, i as u64)).unwrap();
            let without_3: usize = (0..3).max_by_key(|&i| hrw_score(key, i as u64)).unwrap();
            if all != 3 {
                assert_eq!(all, without_3, "key {key} moved although replica 3 held it not");
            }
        }
    }
}
