//! Fleet semantics: stable routing, work stealing, bounded admission,
//! merged stats, and the crash chaos gate (zero lost tickets).

use std::time::Duration;

use lancet_fleet::{Fleet, FleetConfig};
use lancet_ir::GateKind;
use lancet_models::GptMoeConfig;
use lancet_serve::{ServeConfig, ServeError};

fn tiny_cfg(name: &str) -> GptMoeConfig {
    let mut cfg = GptMoeConfig::tiny(1, GateKind::Switch);
    cfg.name = name.into();
    cfg
}

fn quick_serve() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        exec_workers: 1,
        ..ServeConfig::default()
    }
}

fn prompt(cfg: &GptMoeConfig, salt: usize) -> Vec<f32> {
    (0..cfg.seq).map(|t| ((t + salt) % cfg.vocab) as f32).collect()
}

#[test]
fn routing_is_stable_and_health_aware() {
    let fleet = Fleet::start(FleetConfig {
        replicas: 4,
        serve: quick_serve(),
        ..FleetConfig::default()
    });
    let cfg = tiny_cfg("routed");
    fleet.register_model(cfg.clone()).unwrap();

    let home = fleet.route_of("routed").unwrap();
    for _ in 0..10 {
        assert_eq!(fleet.route_of("routed").unwrap(), home, "routing must be deterministic");
    }
    assert!(matches!(fleet.route_of("nope"), Err(ServeError::UnknownModel(_))));

    // With stealing disabled, every request lands on the routed replica.
    let strict = Fleet::start(FleetConfig {
        replicas: 4,
        serve: quick_serve(),
        steal_threshold: usize::MAX,
    });
    strict.register_model(cfg.clone()).unwrap();
    let home = strict.route_of("routed").unwrap();
    for i in 0..6 {
        strict.submit_blocking("routed", prompt(&cfg, i)).unwrap();
    }
    let stats = strict.stats();
    assert_eq!(stats.per_replica[home].completed, 6);
    assert_eq!(stats.merged.completed, 6);
    assert_eq!(stats.stolen, 0);
    for (i, r) in stats.per_replica.iter().enumerate() {
        if i != home {
            assert_eq!(r.submitted, 0, "replica {i} saw traffic it does not own");
        }
    }

    // Crashing the home replica re-routes the model somewhere healthy.
    strict.crash(home);
    let rerouted = strict.route_of("routed").unwrap();
    assert_ne!(rerouted, home);
    assert_eq!(strict.healthy(), 3);
    strict.submit_blocking("routed", prompt(&cfg, 99)).unwrap();
    strict.shutdown();
    fleet.shutdown();
}

#[test]
fn work_stealing_spreads_a_hot_model() {
    // One model, so consistent routing aims everything at one replica;
    // a 10ms service floor makes its queue build instantly, and a
    // threshold of 1 lets the fleet spill to the idle replica.
    let fleet = Fleet::start(FleetConfig {
        replicas: 2,
        serve: ServeConfig {
            service_floor: Duration::from_millis(10),
            max_batch: 1,
            batch_window: Duration::ZERO,
            exec_workers: 1,
            ..ServeConfig::default()
        },
        steal_threshold: 1,
    });
    let cfg = tiny_cfg("hot");
    fleet.register_model(cfg.clone()).unwrap();

    let tickets: Vec<_> =
        (0..24).map(|i| fleet.submit("hot", prompt(&cfg, i)).unwrap()).collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = fleet.stats();
    assert_eq!(stats.merged.completed, 24);
    assert!(stats.stolen > 0, "a hot replica with an idle peer must shed load");
    assert!(
        stats.per_replica.iter().all(|r| r.completed > 0),
        "both replicas must end up serving: {:?}",
        stats.per_replica.iter().map(|r| r.completed).collect::<Vec<_>>()
    );
    assert_eq!(stats.merged.outstanding(), 0);
    fleet.shutdown();
}

#[test]
fn admission_stays_bounded_per_replica() {
    // Tiny queues + a big service floor: the fleet must overflow to the
    // other replica first, then reject with the same typed error a
    // single runtime gives.
    let fleet = Fleet::start(FleetConfig {
        replicas: 2,
        serve: ServeConfig {
            queue_depth: 2,
            service_floor: Duration::from_millis(100),
            max_batch: 1,
            batch_window: Duration::ZERO,
            exec_workers: 1,
            ..ServeConfig::default()
        },
        steal_threshold: usize::MAX,
    });
    let cfg = tiny_cfg("bounded");
    fleet.register_model(cfg.clone()).unwrap();

    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..32 {
        match fleet.submit("bounded", prompt(&cfg, i)) {
            Ok(t) => admitted.push(t),
            Err(ServeError::Overloaded { depth }) => {
                assert_eq!(depth, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(rejected > 0, "2 replicas × (queue 2 + in flight) cannot admit 32 instant submits");
    for t in admitted {
        t.wait().unwrap();
    }
    assert_eq!(fleet.stats().merged.outstanding(), 0);
    fleet.shutdown();
}

#[test]
fn crash_loses_no_admitted_ticket() {
    // The chaos gate: fill the routed replica's queue, kill it, and
    // require every admitted ticket to still produce a response via
    // re-routing — zero lost, zero Crashed surfaced to callers.
    let fleet = Fleet::start(FleetConfig {
        replicas: 3,
        serve: ServeConfig {
            service_floor: Duration::from_millis(5),
            max_batch: 2,
            batch_window: Duration::from_millis(1),
            exec_workers: 1,
            ..ServeConfig::default()
        },
        steal_threshold: usize::MAX,
    });
    let cfg = tiny_cfg("fragile");
    fleet.register_model(cfg.clone()).unwrap();
    let home = fleet.route_of("fragile").unwrap();

    let tickets: Vec<_> =
        (0..20).map(|i| fleet.submit("fragile", prompt(&cfg, i)).unwrap()).collect();
    fleet.crash(home);

    for t in tickets {
        t.wait().expect("a fleet ticket must survive a replica crash");
    }
    let stats = fleet.stats();
    assert_eq!(stats.healthy, 2);
    assert_eq!(stats.merged.completed, 20, "every admitted request completed somewhere");
    assert_eq!(stats.merged.outstanding(), 0, "exactly-once: nothing admitted is unanswered");
    // The crash must actually have been disruptive for the gate to mean
    // anything: the dead replica answered Crashed for its queue, and
    // those tickets were re-routed.
    assert!(stats.merged.crashed > 0, "the crash drained nothing — gate is vacuous");
    assert_eq!(stats.rerouted, stats.merged.crashed);
    // Determinism makes re-execution safe: identical prompts from before
    // and after the crash agree bit-for-bit.
    let before = fleet.submit_blocking("fragile", prompt(&cfg, 7)).unwrap();
    let after = fleet.submit_blocking("fragile", prompt(&cfg, 7)).unwrap();
    assert_eq!(before, after);
    fleet.shutdown();
}

#[test]
fn merged_stats_sum_replica_counters() {
    let fleet = Fleet::start(FleetConfig {
        replicas: 2,
        serve: quick_serve(),
        ..FleetConfig::default()
    });
    let a = tiny_cfg("model-a");
    let b = tiny_cfg("model-b");
    fleet.register_model(a.clone()).unwrap();
    fleet.register_model(b.clone()).unwrap();
    for i in 0..4 {
        fleet.submit_blocking("model-a", prompt(&a, i)).unwrap();
        fleet.submit_blocking("model-b", prompt(&b, i)).unwrap();
    }
    let stats = fleet.stats();
    let sum: u64 = stats.per_replica.iter().map(|r| r.completed).sum();
    assert_eq!(stats.merged.completed, 8);
    assert_eq!(sum, 8);
    assert_eq!(
        stats.merged.latency_samples.len(),
        stats.per_replica.iter().map(|r| r.latency_samples.len()).sum::<usize>()
    );
    fleet.shutdown();
}
