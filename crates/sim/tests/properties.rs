//! Property-based tests for simulator invariants.

use lancet_cost::{ClusterSpec, CommModel, ComputeModel};
use lancet_ir::{Graph, Op, Role, TensorId};
use lancet_sim::{SimConfig, Simulator, Stream};
use proptest::prelude::*;

fn simulator(gpus: usize) -> Simulator {
    let spec = ClusterSpec::v100(gpus.div_ceil(8));
    Simulator::new(
        ComputeModel::new(spec.device.clone()),
        CommModel::new(spec),
        SimConfig::new(gpus),
    )
}

/// Random graph mixing compute chains and all-to-alls.
fn random_graph(ops: &[u8]) -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![8, 16, 64]);
    let w = g.weight("w", vec![64, 64]);
    let mut pool: Vec<TensorId> = vec![x];
    for &b in ops {
        let a = pool[(b as usize) % pool.len()];
        let out = match b % 4 {
            0 => g.emit(Op::MatMul { transpose_b: false }, &[a, w], Role::Forward).unwrap(),
            1 => g.emit(Op::Gelu, &[a], Role::Forward).unwrap(),
            2 => g.emit(Op::AllToAll, &[a], Role::Comm).unwrap(),
            _ => g.emit(Op::Relu, &[a], Role::Forward).unwrap(),
        };
        pool.push(out);
    }
    g
}

proptest! {
    /// Core timing invariants: the iteration is at least as long as the
    /// busier stream, overlap is bounded by the less busy stream, and
    /// serial execution (busy sum) is an upper bound.
    #[test]
    fn timing_invariants(ops in prop::collection::vec(any::<u8>(), 1..40), gpus_pow in 1usize..4) {
        let g = random_graph(&ops);
        let r = simulator(1 << (3 + gpus_pow - 1)).simulate(&g);
        prop_assert!(r.iteration_time >= r.compute_busy.max(r.comm_busy) - 1e-12);
        prop_assert!(r.iteration_time <= r.compute_busy + r.comm_busy + 1e-12);
        prop_assert!(r.overlapped <= r.compute_busy.min(r.comm_busy) + 1e-12);
        prop_assert!(r.exposed_comm() >= 0.0 && r.exposed_compute() >= 0.0);
    }

    /// Per-stream events never overlap and appear in non-decreasing start
    /// order; every event has non-negative duration.
    #[test]
    fn stream_events_are_serial(ops in prop::collection::vec(any::<u8>(), 1..40)) {
        let g = random_graph(&ops);
        let r = simulator(16).simulate(&g);
        for stream in [Stream::Compute, Stream::Comm] {
            let mut last_end = 0.0f64;
            for e in r.timeline.iter().filter(|e| e.stream == stream) {
                prop_assert!(e.end >= e.start);
                prop_assert!(e.start >= last_end - 1e-12, "stream events overlap");
                last_end = e.end;
            }
        }
    }

    /// Determinism: identical inputs give identical reports.
    #[test]
    fn simulation_is_deterministic(ops in prop::collection::vec(any::<u8>(), 1..30)) {
        let g = random_graph(&ops);
        let a = simulator(16).simulate(&g);
        let b = simulator(16).simulate(&g);
        prop_assert_eq!(a, b);
    }

    /// Events respect data dependencies: a consumer starts no earlier
    /// than its producers end.
    #[test]
    fn dependencies_respected(ops in prop::collection::vec(any::<u8>(), 1..40)) {
        let g = random_graph(&ops);
        let r = simulator(16).simulate(&g);
        let producers = g.producer_positions();
        for (pos, instr) in g.instrs().iter().enumerate() {
            for t in &instr.inputs {
                if let Some(&p) = producers.get(t) {
                    prop_assert!(
                        r.timeline[pos].start >= r.timeline[p].end - 1e-12,
                        "instr {} starts before producer {} ends", pos, p
                    );
                }
            }
        }
    }
}
