//! Rendering conformance for the simulator's two export surfaces — the
//! ASCII Gantt chart and the Chrome trace — driven through *real*
//! simulated reports (the in-crate unit tests cover hand-built ones).

use lancet_cost::{ClusterSpec, CommModel, ComputeModel};
use lancet_ir::{Graph, Op, Role};
use lancet_sim::{
    render_gantt, to_chrome_trace, FaultKind, FaultPlan, SimConfig, SimReport, Simulator, Stream,
};

fn simulate(plan: FaultPlan) -> SimReport {
    let spec = ClusterSpec::v100(2);
    let sim = Simulator::new(
        ComputeModel::new(spec.device.clone()),
        CommModel::new(spec),
        SimConfig::new(16).with_fault_plan(plan),
    );
    let mut g = Graph::new();
    let x = g.input("x", vec![16, 128, 512]);
    let w = g.weight("w", vec![512, 512]);
    let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
    let t = g.emit(Op::AllToAll, &[h], Role::Comm).unwrap();
    let _indep = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
    let _y = g.emit(Op::MatMul { transpose_b: false }, &[t, w], Role::Forward).unwrap();
    sim.simulate(&g)
}

/// The chart's geometry is exact: both tracks are `width` cells wide,
/// every simulated instruction marks at least one cell, and the summary
/// line carries the iteration time.
#[test]
fn gantt_geometry_matches_report() {
    let report = simulate(FaultPlan::none());
    for width in [8usize, 24, 72] {
        let chart = render_gantt(&report, width);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].starts_with("compute |") && lines[0].ends_with('|'));
        assert!(lines[1].starts_with("comm    |") && lines[1].ends_with('|'));
        assert_eq!(lines[0].len(), "compute |".len() + width + 1);
        assert_eq!(lines[1].len(), lines[0].len());
        assert!(lines[0].contains('#'), "the matmuls must mark the compute track");
        assert!(lines[1].contains('='), "the all-to-all must mark the comm track");
        let total_ms = format!("{:.1} ms", report.iteration_time * 1e3);
        assert!(lines[2].contains(&total_ms), "summary must carry the iteration time");
    }
}

/// A faulted report renders the fault summary line; a healthy one does
/// not — the chart only talks about faults when something fired.
#[test]
fn gantt_fault_line_tracks_injection() {
    let healthy = simulate(FaultPlan::none());
    assert!(!render_gantt(&healthy, 24).contains("faults"));

    let horizon = healthy.iteration_time * 2.0;
    let plan = FaultPlan::new(3).with(0.0, horizon, FaultKind::Straggler { gpu: 0, slowdown: 3.0 });
    let faulted = simulate(plan);
    let chart = render_gantt(&faulted, 24);
    assert!(faulted.faults.compute_slowed > 0);
    assert!(chart.contains("faults"), "{chart}");
    assert!(chart.contains(&format!("{} compute op(s) slowed", faulted.faults.compute_slowed)));
}

/// The Chrome trace covers every timeline event with one complete event,
/// microsecond-accurate and track-separated.
#[test]
fn chrome_trace_covers_the_timeline() {
    let report = simulate(FaultPlan::none());
    let json = to_chrome_trace(&report);
    assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    assert_eq!(
        json.matches("\"ph\": \"X\"").count(),
        report.timeline.len(),
        "one complete event per simulated instruction"
    );
    for e in &report.timeline {
        assert!(json.contains(&format!("\"name\": \"{}\"", e.op)));
        // Timestamps are exported in microseconds with 3 decimals.
        assert!(
            json.contains(&format!("\"ts\": {:.3}", e.start * 1e6)),
            "missing timestamp for {} at {}",
            e.op,
            e.start
        );
    }
    let comm_events = report.timeline.iter().filter(|e| e.stream == Stream::Comm).count();
    assert_eq!(json.matches("\"tid\": 2").count(), comm_events);
}

/// Both renderers are pure functions of the report: a replayed faulted
/// simulation renders byte-identical artifacts.
#[test]
fn renders_are_deterministic_under_faults() {
    let healthy = simulate(FaultPlan::none());
    let plan = FaultPlan::generate(0xC4A05, 16, healthy.iteration_time);
    let a = simulate(plan.clone());
    let b = simulate(plan);
    assert_eq!(render_gantt(&a, 72), render_gantt(&b, 72));
    assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
}
