//! Chaos conformance for the simulator: injected faults must be
//! deterministic (same seed ⇒ bit-identical reports, Gantt charts, and
//! Chrome traces), slow-but-correct (faults only ever lengthen the
//! iteration), and fully accounted for in the report's fault summary.

use lancet_cost::{ClusterSpec, CommModel, ComputeModel};
use lancet_ir::{Graph, Op, Role};
use lancet_sim::{
    render_gantt, to_chrome_trace, FaultKind, FaultPlan, SimConfig, Simulator,
};

const GPUS: usize = 16;

fn simulator(plan: FaultPlan) -> Simulator {
    let spec = ClusterSpec::v100(GPUS.div_ceil(8));
    Simulator::new(
        ComputeModel::new(spec.device.clone()),
        CommModel::new(spec),
        SimConfig::new(GPUS).with_fault_plan(plan),
    )
}

/// An MoE-shaped iteration: compute feeding an all-to-all feeding
/// dependent compute, plus an independent op that can overlap.
fn moe_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![16, 128, 512]);
    let w = g.weight("w", vec![512, 512]);
    let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
    let t = g.emit(Op::AllToAll, &[h], Role::Comm).unwrap();
    let _indep = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
    let _y = g.emit(Op::MatMul { transpose_b: false }, &[t, w], Role::Forward).unwrap();
    g
}

/// Same seed ⇒ bit-identical everything: the report (every float), the
/// rendered Gantt chart, and the exported Chrome trace.
#[test]
fn seeded_fault_replay_is_bit_identical() {
    let g = moe_graph();
    let horizon = simulator(FaultPlan::none()).simulate(&g).iteration_time;
    for seed in [1u64, 0xC4A05, 0xdead_beef] {
        let plan = FaultPlan::generate(seed, GPUS, horizon);
        let a = simulator(plan.clone()).simulate(&g);
        let b = simulator(plan).simulate(&g);
        assert_eq!(a, b, "seed {seed}: replay must be bit-identical");
        assert_eq!(render_gantt(&a, 72), render_gantt(&b, 72));
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
    }
}

/// Faults are slow-but-correct: every generated schedule yields an
/// iteration at least as long as the healthy one, never shorter.
#[test]
fn faults_never_speed_up_the_iteration() {
    let g = moe_graph();
    let healthy = simulator(FaultPlan::none()).simulate(&g);
    for seed in 0..24u64 {
        let plan = FaultPlan::generate(seed, GPUS, healthy.iteration_time);
        let faulted = simulator(plan).simulate(&g);
        assert!(
            faulted.iteration_time >= healthy.iteration_time - 1e-12,
            "seed {seed}: faulted iteration {} < healthy {}",
            faulted.iteration_time,
            healthy.iteration_time
        );
    }
}

/// A whole-horizon fault visibly degrades the run and the degradation is
/// attributed in the fault summary (nothing injected goes unaccounted).
#[test]
fn injected_faults_are_accounted() {
    let g = moe_graph();
    let healthy = simulator(FaultPlan::none()).simulate(&g);
    let horizon = healthy.iteration_time * 2.0;
    let plan = FaultPlan::new(7)
        .with(0.0, horizon, FaultKind::Straggler { gpu: 0, slowdown: 2.0 })
        .with(0.0, horizon, FaultKind::LinkDrops { probability: 1.0, retransmit: 1.0 });
    let faulted = simulator(plan).simulate(&g);
    assert!(faulted.iteration_time > healthy.iteration_time);
    assert!(faulted.faults.any());
    assert!(faulted.faults.compute_slowed > 0, "every compute op ran under the straggler");
    assert!(faulted.faults.link_drops > 0, "probability-1 drops must fire");
    assert!(faulted.faults.injected_delay > 0.0);
    // The injected delay is real time: busy totals grew by at least it.
    let healthy_busy = healthy.compute_busy + healthy.comm_busy;
    let faulted_busy = faulted.compute_busy + faulted.comm_busy;
    assert!(faulted_busy >= healthy_busy + faulted.faults.injected_delay - 1e-9);
}

/// An empty fault plan is exactly the healthy simulation — injection is
/// free when unused.
#[test]
fn empty_plan_is_identity() {
    let g = moe_graph();
    let healthy = simulator(FaultPlan::none()).simulate(&g);
    let with_empty = simulator(FaultPlan::new(99)).simulate(&g);
    assert_eq!(healthy, with_empty);
    assert!(!healthy.faults.any());
}
