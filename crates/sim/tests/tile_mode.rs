//! Conformance for the simulator's tile-interleave mode: tile events are
//! real (per-tile sub-events with dependency edges, visible in the Gantt
//! chart and Chrome trace), deterministic under seeded fault plans, and
//! the mode composes with placement-aware charging without perturbing the
//! `placement = None` baseline. `tiles = 1` is exactly the stock
//! whole-operator simulation.

use lancet_cost::{ClusterSpec, CommModel, ComputeModel, ExpertTraffic, PlacementPlan};
use lancet_ir::{Graph, Op, Role};
use lancet_sim::{
    render_gantt, to_chrome_trace, FaultPlan, SimConfig, SimReport, Simulator, Stream,
};

const GPUS: usize = 16;
const EXPERTS: usize = 4;
const CAP: usize = 64;
const MODEL: usize = 256;

fn simulator(cfg: SimConfig) -> Simulator {
    let spec = ClusterSpec::v100(GPUS.div_ceil(8));
    Simulator::new(ComputeModel::new(spec.device.clone()), CommModel::new(spec), cfg)
}

/// The shape the tile scheduler emits at partition level, miniaturized:
/// dispatch all-to-all → per-expert GEMM chain → combine all-to-all, on
/// an `(experts, capacity, model)` buffer.
fn expert_pipeline() -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", vec![EXPERTS, CAP, MODEL]);
    let w1 = g.weight("w1", vec![EXPERTS, MODEL, MODEL]);
    let w2 = g.weight("w2", vec![EXPERTS, MODEL, MODEL]);
    let d = g.emit(Op::AllToAll, &[x], Role::Comm).unwrap();
    let h = g
        .emit(Op::BatchedMatMul { transpose_b: false }, &[d, w1], Role::Forward)
        .unwrap();
    let a = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
    let o = g
        .emit(Op::BatchedMatMul { transpose_b: false }, &[a, w2], Role::Forward)
        .unwrap();
    let _back = g.emit(Op::AllToAll, &[o], Role::Comm).unwrap();
    g
}

fn run(tiles: usize) -> SimReport {
    simulator(SimConfig::new(GPUS).with_tiles(tiles)).simulate(&expert_pipeline())
}

/// `tiles = 1` is the stock simulator: identical report, chart, trace —
/// the mode costs nothing when off.
#[test]
fn tiles_one_is_the_stock_simulation() {
    let stock = simulator(SimConfig::new(GPUS)).simulate(&expert_pipeline());
    let one = run(1);
    assert_eq!(stock, one);
    assert!(one.timeline.iter().all(|e| e.tile.is_none()));
}

/// Tile mode splits each uniform all-to-all and the expert ops it feeds
/// into per-tile sub-events sharing the instruction's position, with
/// per-tile dependency edges: tile 0's GEMM starts before the dispatch's
/// last tile lands, which is the overlap the mode models.
#[test]
fn tile_events_carry_indices_and_overlap() {
    for tiles in [2usize, 4, 8] {
        let r = run(tiles);
        // Every a2a and every expert op contributes `tiles` sub-events.
        for pos in 0..expert_pipeline().instrs().len() {
            let evs: Vec<_> = r.timeline.iter().filter(|e| e.position == pos).collect();
            assert_eq!(evs.len(), tiles, "position {pos} at tiles={tiles}");
            let idx: Vec<_> = evs.iter().map(|e| e.tile.unwrap()).collect();
            assert_eq!(idx, (0..tiles).collect::<Vec<_>>());
        }
        // Per-tile dependency edges, not a whole-buffer barrier: the first
        // GEMM tile starts strictly before the dispatch finishes.
        let dispatch_end = r
            .timeline
            .iter()
            .filter(|e| e.position == 0)
            .map(|e| e.end)
            .fold(0.0f64, f64::max);
        let first_gemm = r
            .timeline
            .iter()
            .find(|e| e.position == 1 && e.tile == Some(0))
            .expect("tiled GEMM event");
        assert!(
            first_gemm.start < dispatch_end,
            "tiles={tiles}: GEMM tile 0 starts at {} after full dispatch {}",
            first_gemm.start,
            dispatch_end
        );
        // Both streams carry tile events.
        assert!(r.timeline.iter().any(|e| e.stream == Stream::Comm && e.tile.is_some()));
        assert!(r.timeline.iter().any(|e| e.stream == Stream::Compute && e.tile.is_some()));
    }
}

/// Tile indices surface in both export formats: parity striping in the
/// Gantt chart and a `"tile"` arg on every sub-event in the Chrome trace.
#[test]
fn tile_events_visible_in_exports() {
    let r = run(4);
    let chart = render_gantt(&r, 72);
    assert!(chart.contains('+'), "odd compute tiles must stripe the chart:\n{chart}");
    assert!(chart.contains('-'), "odd comm tiles must stripe the chart:\n{chart}");
    let json = to_chrome_trace(&r);
    let tiled = r.timeline.iter().filter(|e| e.tile.is_some()).count();
    assert_eq!(json.matches("\"tile\": ").count(), tiled);
    assert!(json.contains("\"tile\": 3"));
}

/// Same seed + fault plan in tile mode ⇒ bit-identical report, Gantt
/// chart, and Chrome trace — per-tile fault factors included.
#[test]
fn tile_mode_fault_replay_is_bit_identical() {
    let g = expert_pipeline();
    let horizon = run(4).iteration_time * 2.0;
    for seed in [1u64, 0xC4A05, 0xdead_beef] {
        let plan = FaultPlan::generate(seed, GPUS, horizon);
        let cfg = || SimConfig::new(GPUS).with_tiles(4).with_fault_plan(plan.clone());
        let a = simulator(cfg()).simulate(&g);
        let b = simulator(cfg()).simulate(&g);
        assert_eq!(a, b, "seed {seed}: tile-mode replay must be bit-identical");
        assert_eq!(render_gantt(&a, 72), render_gantt(&b, 72));
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
    }
}

/// Faults only lengthen tile-mode iterations, never shorten them.
#[test]
fn tile_mode_faults_never_speed_up() {
    let g = expert_pipeline();
    let healthy = run(4);
    for seed in 0..16u64 {
        let plan = FaultPlan::generate(seed, GPUS, healthy.iteration_time);
        let faulted =
            simulator(SimConfig::new(GPUS).with_tiles(4).with_fault_plan(plan)).simulate(&g);
        assert!(
            faulted.iteration_time >= healthy.iteration_time - 1e-12,
            "seed {seed}: {} < {}",
            faulted.iteration_time,
            healthy.iteration_time
        );
    }
}

/// Tile mode composes with placement-aware charging: a uniform plan over
/// balanced traffic charges exactly what the `placement = None` tile-mode
/// baseline charges, so installing a plan never perturbs the healthy
/// default. Per-tile events still carry their indices.
#[test]
fn uniform_placement_composes_with_tiles() {
    let g = expert_pipeline();
    let baseline = run(4);
    let mut traffic = ExpertTraffic::new(2, GPUS, 2048);
    for l in 0..2 {
        for e in 0..GPUS {
            traffic.record_load(l, e, 64);
        }
    }
    for i in 0..GPUS {
        for j in 0..GPUS {
            traffic.record_transition(0, i, j, 4);
        }
    }
    let placed = simulator(
        SimConfig::new(GPUS)
            .with_tiles(4)
            .with_placement(PlacementPlan::uniform(2, GPUS, GPUS), traffic),
    )
    .simulate(&g);
    assert!(
        (placed.iteration_time - baseline.iteration_time).abs() < 1e-12,
        "uniform placement must not perturb tile mode: {} vs {}",
        placed.iteration_time,
        baseline.iteration_time
    );
    assert_eq!(placed.timeline.len(), baseline.timeline.len());
    assert!(placed.timeline.iter().any(|e| e.tile.is_some()));
}

/// Capacity too small to split: tile mode degrades per-instruction to
/// whole-operator charging instead of emitting degenerate slivers.
#[test]
fn narrow_buffers_fall_back_to_whole_operator() {
    let mut g = Graph::new();
    let x = g.input("x", vec![EXPERTS, 2, MODEL]);
    let t = g.emit(Op::AllToAll, &[x], Role::Comm).unwrap();
    let w = g.weight("w", vec![EXPERTS, MODEL, MODEL]);
    let _ = g
        .emit(Op::BatchedMatMul { transpose_b: false }, &[t, w], Role::Forward)
        .unwrap();
    let r = simulator(SimConfig::new(GPUS).with_tiles(8)).simulate(&g);
    // dim(1) = 2 < 8 tiles: the a2a is not split, so nothing downstream
    // tiles either.
    assert!(r.timeline.iter().all(|e| e.tile.is_none()));
    let stock = simulator(SimConfig::new(GPUS)).simulate(&g);
    assert_eq!(r, stock);
}
