//! Chrome-trace (chrome://tracing, Perfetto) export of simulated
//! timelines.
//!
//! Produces the Trace Event Format's JSON array of complete (`"ph": "X"`)
//! events: one track per stream, microsecond timestamps. Load the output
//! in `chrome://tracing` or <https://ui.perfetto.dev> to inspect exactly
//! where communication overlaps computation.

use crate::{SimReport, Stream};

/// Renders a simulated timeline as Chrome Trace Event Format JSON.
///
/// # Example
///
/// ```
/// use lancet_cost::{ClusterSpec, CommModel, ComputeModel};
/// use lancet_ir::{Graph, Op, Role};
/// use lancet_sim::{to_chrome_trace, SimConfig, Simulator};
///
/// let spec = ClusterSpec::v100(1);
/// let sim = Simulator::new(
///     ComputeModel::new(spec.device.clone()),
///     CommModel::new(spec),
///     SimConfig::new(8),
/// );
/// let mut g = Graph::new();
/// let x = g.input("x", vec![64, 64]);
/// let _ = g.emit(Op::Relu, &[x], Role::Forward)?;
/// let report = sim.simulate(&g);
/// let json = to_chrome_trace(&report);
/// assert!(json.starts_with('['));
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn to_chrome_trace(report: &SimReport) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for e in &report.timeline {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let (tid, track) = match e.stream {
            Stream::Compute => (1, "compute"),
            Stream::Comm => (2, "comm"),
            Stream::CommAux => (3, "comm-aux"),
        };
        // Complete event: name, category (track), timestamp+duration in
        // µs. Tile-interleave sub-events carry their tile index so the
        // per-tile pipeline is inspectable in the viewer.
        let args = match e.tile {
            Some(t) => format!("{{\"position\": {}, \"tile\": {}}}", e.position, t),
            None => format!("{{\"position\": {}}}", e.position),
        };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \
             \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {}}}",
            e.op,
            track,
            tid,
            e.start * 1e6,
            e.duration() * 1e6,
            args
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimelineEvent;

    fn report() -> SimReport {
        SimReport {
            iteration_time: 2.0,
            compute_busy: 1.0,
            comm_busy: 1.0,
            overlapped: 0.5,
            peak_memory: 0,
            oom: false,
            faults: crate::FaultSummary::default(),
            timeline: vec![
                TimelineEvent { position: 0, op: "matmul", stream: Stream::Compute, start: 0.0, end: 1.0, tile: None },
                TimelineEvent { position: 1, op: "all_to_all", stream: Stream::Comm, start: 0.5, end: 1.5, tile: None },
            ],
        }
    }

    #[test]
    fn trace_is_valid_json_array() {
        let json = to_chrome_trace(&report());
        // Hand-rolled writer: verify with a real JSON parser via serde in
        // the bench crate's tests; here check structure.
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
        assert!(json.contains("\"name\": \"matmul\""));
        assert!(json.contains("\"tid\": 2"));
    }

    #[test]
    fn timestamps_in_microseconds() {
        let json = to_chrome_trace(&report());
        assert!(json.contains("\"ts\": 500000.000"), "{json}");
        assert!(json.contains("\"dur\": 1000000.000"));
    }

    #[test]
    fn tile_index_lands_in_args() {
        let mut r = report();
        r.timeline[1].tile = Some(3);
        let json = to_chrome_trace(&r);
        assert!(json.contains("\"args\": {\"position\": 1, \"tile\": 3}"), "{json}");
        assert!(json.contains("\"args\": {\"position\": 0}"), "{json}");
    }

    #[test]
    fn empty_timeline_is_empty_array() {
        let mut r = report();
        r.timeline.clear();
        let json = to_chrome_trace(&r);
        assert_eq!(json.replace(char::is_whitespace, ""), "[]");
    }
}
