//! Simulation configuration.

use crate::FaultPlan;
use lancet_cost::{ExpertTraffic, PlacementPlan};

/// Knobs controlling one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of GPUs participating in collectives.
    pub gpus: usize,
    /// Capacity factor used by the model's MoE layers; determines the
    /// expected utilization of irregular all-to-all buffers (actual tokens
    /// ≈ padded / capacity-factor).
    pub capacity_factor: f64,
    /// Relative jitter (±) applied to sampled irregular loads, modelling
    /// routing imbalance and token drops. `0.1` means ±10 %.
    pub load_jitter: f64,
    /// Seed for the deterministic load sampler.
    pub seed: u64,
    /// Multiplier on compute-op latency, modelling framework overhead
    /// differences (the paper notes PyTorch op performance differs from
    /// RAF's; baselines run with a factor > 1).
    pub compute_overhead: f64,
    /// Multiplier on the liveness-based activation-memory estimate
    /// (framework allocator slack; DeepSpeed's is higher, reproducing its
    /// earlier OOM in Fig. 11).
    pub memory_overhead: f64,
    /// Use the hierarchical (two-stage, node-aggregated) all-to-all
    /// implementation instead of naive per-peer exchange.
    pub hierarchical_a2a: bool,
    /// Run non-all-to-all collectives (all-reduce, all-gather,
    /// reduce-scatter) on a second communication channel so they proceed
    /// concurrently with MoE all-to-alls — the arrangement the paper's §8
    /// suggests for tensor/sequence-parallel and gradient traffic.
    pub separate_collective_channel: bool,
    /// Model MegaBlocks-style block-sparse expert kernels (paper §8):
    /// expert matmuls fed by *irregular* buffers are charged for actual
    /// token rows instead of the zero-padded capacity.
    pub block_sparse_experts: bool,
    /// Injected faults (stragglers, degraded links, transient drops).
    /// Empty by default — a healthy cluster. Same plan ⇒ bit-identical
    /// report; see [`FaultPlan`].
    pub fault_plan: FaultPlan,
    /// Expert placement to replay the schedule under. `None` charges
    /// all-to-alls with the stock uniform model; `Some` derives per-layer
    /// inter-node fractions and load factors from the plan + histogram
    /// (see [`PlacementPlan::layer_profiles`]) so optimized and uniform
    /// placements can be compared on the same schedule.
    pub placement: Option<PlacementSim>,
    /// Tile-interleave mode (Comet direction): when ≥ 2, each *uniform*
    /// all-to-all is charged as that many per-tile exchanges along the
    /// capacity axis, and the expert ops it feeds chain per tile — tile
    /// `k`'s compute starts as soon as tile `k`'s transfer lands, so
    /// communication hides inside the operator. Per-tile events carry
    /// their tile index in the timeline/Gantt/Chrome trace. `1` (the
    /// default) keeps whole-operator charging; irregular all-to-alls are
    /// never tiled (their payloads are data-dependent).
    pub tiles: usize,
}

/// A placement scenario for simulation replay: the expert→device plan
/// plus the routing histogram it is judged against.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementSim {
    /// Expert→device assignment per MoE layer.
    pub plan: PlacementPlan,
    /// Routing histogram (loads + inter-layer transitions).
    pub traffic: ExpertTraffic,
}

impl SimConfig {
    /// A configuration for `gpus` devices with neutral overheads.
    pub fn new(gpus: usize) -> Self {
        SimConfig {
            gpus,
            capacity_factor: 1.25,
            load_jitter: 0.1,
            seed: 0x1a5ce7,
            compute_overhead: 1.0,
            memory_overhead: 1.0,
            hierarchical_a2a: false,
            separate_collective_channel: false,
            block_sparse_experts: false,
            fault_plan: FaultPlan::none(),
            placement: None,
            tiles: 1,
        }
    }

    /// Sets the compute-overhead multiplier (builder style).
    pub fn with_compute_overhead(mut self, factor: f64) -> Self {
        self.compute_overhead = factor;
        self
    }

    /// Sets the memory-overhead multiplier (builder style).
    pub fn with_memory_overhead(mut self, factor: f64) -> Self {
        self.memory_overhead = factor;
        self
    }

    /// Sets the load-sampler seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the injected-fault schedule (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Replays the schedule under an expert placement (builder style).
    /// All-to-alls are charged with placement-derived inter-node
    /// fractions and load factors instead of the uniform constants.
    pub fn with_placement(mut self, plan: PlacementPlan, traffic: ExpertTraffic) -> Self {
        self.placement = Some(PlacementSim { plan, traffic });
        self
    }

    /// Enables tile-interleave mode with `tiles` tiles per uniform
    /// all-to-all (builder style). Values ≤ 1 keep whole-operator
    /// charging.
    pub fn with_tiles(mut self, tiles: usize) -> Self {
        self.tiles = tiles.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = SimConfig::new(8)
            .with_compute_overhead(1.1)
            .with_memory_overhead(1.2)
            .with_seed(7)
            .with_fault_plan(crate::FaultPlan::generate(3, 8, 0.5))
            .with_tiles(4);
        assert_eq!(c.gpus, 8);
        assert_eq!(c.compute_overhead, 1.1);
        assert_eq!(c.memory_overhead, 1.2);
        assert_eq!(c.seed, 7);
        assert!(!c.fault_plan.is_empty());
        assert_eq!(c.tiles, 4);
        // Degenerate tile counts clamp to whole-operator charging.
        assert_eq!(SimConfig::new(8).with_tiles(0).tiles, 1);
    }

    #[test]
    fn default_is_healthy() {
        let c = SimConfig::new(8);
        assert!(c.fault_plan.is_empty());
        assert_eq!(c.tiles, 1, "tile mode is opt-in");
    }
}
