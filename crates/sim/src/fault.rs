//! Deterministic fault injection for the cluster simulator.
//!
//! A production MoE cluster is never uniformly healthy: individual GPUs
//! straggle (thermal throttling, noisy neighbours), links degrade (ECN
//! storms, flapping optics), and packets are occasionally lost and
//! retransmitted. The Lancet paper evaluates on healthy clusters, but the
//! overlap schedules it produces must *degrade gracefully* — a straggler
//! should stretch the timeline, not change what the graph computes.
//!
//! A [`FaultPlan`] is a seeded schedule of fault windows that the
//! simulation engine consults when pricing each instruction:
//!
//! * [`FaultKind::Straggler`] — a device computes `slowdown`× slower
//!   while the window is active. The simulator tracks one representative
//!   (slowest) device, so any active straggler stretches compute ops.
//! * [`FaultKind::DegradedLink`] — collectives pay `factor`× their
//!   healthy duration (bandwidth loss on the bottleneck link).
//! * [`FaultKind::JitteredLink`] — collectives pay a per-instruction
//!   jitter in `[1, 1 + amplitude]`, sampled deterministically from the
//!   plan seed and the instruction position.
//! * [`FaultKind::LinkDrops`] — each collective in the window is dropped
//!   (and retransmitted, paying `1 + retransmit`× its duration) with the
//!   given probability, decided deterministically per position.
//!
//! Every decision is a pure function of `(plan, instruction position,
//! start time)`, so the same plan on the same graph produces a
//! **bit-identical** [`SimReport`](crate::SimReport) on every run — the
//! property the chaos-conformance suite asserts.

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// GPU `gpu` runs compute `slowdown`× slower (`slowdown >= 1`).
    Straggler {
        /// Index of the straggling device (informational; the simulator's
        /// representative timeline adopts the slowest device's pace).
        gpu: usize,
        /// Compute-duration multiplier, `>= 1`.
        slowdown: f64,
    },
    /// The bottleneck link delivers `factor`× slower collectives.
    DegradedLink {
        /// Communication-duration multiplier, `>= 1`.
        factor: f64,
    },
    /// Collectives see deterministic per-instruction jitter in
    /// `[1, 1 + amplitude]`.
    JitteredLink {
        /// Maximum relative jitter (`0.3` means up to +30 %).
        amplitude: f64,
    },
    /// Collectives are dropped and retransmitted with a fixed
    /// probability, decided deterministically per instruction.
    LinkDrops {
        /// Per-collective drop probability in `[0, 1]`.
        probability: f64,
        /// Extra duration paid on a drop, as a fraction of the healthy
        /// duration (`1.0` = a full retransmission).
        retransmit: f64,
    },
}

/// A fault active during `[from, until)` seconds of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Window start, seconds from iteration start.
    pub from: f64,
    /// Window end (exclusive); `f64::INFINITY` covers the whole run.
    pub until: f64,
    /// What goes wrong while the window is active.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether the window is active at time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.from && t < self.until
    }
}

/// A seeded, deterministic schedule of injected faults.
///
/// # Example
///
/// ```
/// use lancet_sim::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new(7)
///     .with(0.0, f64::INFINITY, FaultKind::Straggler { gpu: 3, slowdown: 1.5 })
///     .with(0.001, 0.002, FaultKind::DegradedLink { factor: 2.0 });
/// assert!(!plan.is_empty());
/// assert!(plan.compute_factor(0.0) > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed driving the plan's per-instruction jitter and drop decisions.
    pub seed: u64,
    /// The scheduled fault windows.
    pub windows: Vec<FaultWindow>,
}

/// Salt separating jitter draws from drop draws.
const SALT_JITTER: u64 = 0x6a17_7e4a;
const SALT_DROP: u64 = 0xd40f_11e5;

/// SplitMix64-style hash of `(seed, salt, position)` to a unit float —
/// the deterministic randomness source behind jitter and drop decisions.
fn unit(seed: u64, salt: u64, pos: u64) -> f64 {
    let mut z = seed
        ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ pos.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// An empty plan (no faults) carrying `seed` for later jitter draws.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, windows: Vec::new() }
    }

    /// The healthy cluster: no faults at all.
    pub fn none() -> Self {
        FaultPlan::new(0)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Adds a fault window (builder style).
    pub fn with(mut self, from: f64, until: f64, kind: FaultKind) -> Self {
        self.windows.push(FaultWindow { from, until, kind });
        self
    }

    /// Generates a seeded schedule of 2–5 fault windows spread over
    /// `[0, horizon)` seconds for a `gpus`-device cluster: a mix of
    /// stragglers, degraded/jittered links, and transient drops, with
    /// magnitudes clamped to the slow-but-correct regime (all factors
    /// `>= 1`). Identical `(seed, gpus, horizon)` produce identical
    /// plans.
    ///
    /// # Panics
    ///
    /// Panics if `horizon <= 0` or `gpus == 0`.
    pub fn generate(seed: u64, gpus: usize, horizon: f64) -> Self {
        assert!(horizon > 0.0, "fault horizon must be positive");
        assert!(gpus > 0, "need at least one device");
        let draw = |salt: u64, pos: u64| unit(seed, salt, pos);
        let count = 2 + (draw(1, 0) * 4.0) as usize; // 2..=5
        let mut plan = FaultPlan::new(seed);
        for i in 0..count {
            let i = i as u64;
            let from = draw(2, i) * horizon * 0.8;
            let until = from + (0.05 + draw(3, i) * 0.55) * horizon;
            let kind = match (draw(4, i) * 4.0) as usize {
                0 => FaultKind::Straggler {
                    gpu: (draw(5, i) * gpus as f64) as usize % gpus,
                    slowdown: 1.2 + draw(6, i) * 1.8, // 1.2..3.0
                },
                1 => FaultKind::DegradedLink { factor: 1.5 + draw(7, i) * 2.5 }, // 1.5..4.0
                2 => FaultKind::JitteredLink { amplitude: 0.1 + draw(8, i) * 0.6 },
                _ => FaultKind::LinkDrops {
                    probability: 0.05 + draw(9, i) * 0.45,
                    retransmit: 0.5 + draw(10, i) * 1.5,
                },
            };
            plan.windows.push(FaultWindow { from, until, kind });
        }
        plan
    }

    /// Compute-duration multiplier at time `t`: the slowdown of the
    /// slowest active straggler (the representative device's pace), `1`
    /// when none is active.
    pub fn compute_factor(&self, t: f64) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.active_at(t))
            .filter_map(|w| match w.kind {
                FaultKind::Straggler { slowdown, .. } => Some(slowdown.max(1.0)),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// Communication-duration multiplier for the instruction at program
    /// position `pos` starting at time `t`, and whether a transient drop
    /// (retransmission) fired. Degradation factors multiply; jitter and
    /// drops are decided deterministically from the plan seed and `pos`.
    pub fn comm_factor(&self, t: f64, pos: usize) -> (f64, bool) {
        let mut factor = 1.0;
        let mut dropped = false;
        for w in self.windows.iter().filter(|w| w.active_at(t)) {
            match w.kind {
                FaultKind::Straggler { .. } => {}
                FaultKind::DegradedLink { factor: f } => factor *= f.max(1.0),
                FaultKind::JitteredLink { amplitude } => {
                    factor *= 1.0 + amplitude.max(0.0) * unit(self.seed, SALT_JITTER, pos as u64);
                }
                FaultKind::LinkDrops { probability, retransmit } => {
                    if unit(self.seed, SALT_DROP, pos as u64) < probability {
                        factor *= 1.0 + retransmit.max(0.0);
                        dropped = true;
                    }
                }
            }
        }
        (factor, dropped)
    }
}

/// How injected faults shaped one simulated iteration — carried on
/// [`SimReport`](crate::SimReport) so fault impact is an observable
/// quantity, not something to eyeball off a Gantt chart.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSummary {
    /// Compute instructions stretched by an active straggler.
    pub compute_slowed: usize,
    /// Communication instructions stretched by link degradation/jitter.
    pub comm_degraded: usize,
    /// Communication instructions that paid a retransmission.
    pub link_drops: usize,
    /// Total extra seconds injected across both streams (the sum of
    /// per-instruction stretch; overlap may hide part of it end-to-end).
    pub injected_delay: f64,
}

impl FaultSummary {
    /// Whether any fault actually fired during the iteration.
    pub fn any(&self) -> bool {
        self.compute_slowed > 0 || self.comm_degraded > 0 || self.link_drops > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_gate_activity() {
        let w = FaultWindow {
            from: 1.0,
            until: 2.0,
            kind: FaultKind::DegradedLink { factor: 2.0 },
        };
        assert!(!w.active_at(0.5));
        assert!(w.active_at(1.0));
        assert!(w.active_at(1.999));
        assert!(!w.active_at(2.0));
    }

    #[test]
    fn compute_factor_takes_slowest_straggler() {
        let plan = FaultPlan::new(1)
            .with(0.0, 10.0, FaultKind::Straggler { gpu: 0, slowdown: 1.5 })
            .with(0.0, 10.0, FaultKind::Straggler { gpu: 1, slowdown: 2.5 })
            .with(0.0, 10.0, FaultKind::DegradedLink { factor: 9.0 });
        assert_eq!(plan.compute_factor(5.0), 2.5);
        assert_eq!(plan.compute_factor(11.0), 1.0);
    }

    #[test]
    fn comm_factor_composes_and_reports_drops() {
        let plan = FaultPlan::new(1)
            .with(0.0, 10.0, FaultKind::DegradedLink { factor: 2.0 })
            .with(0.0, 10.0, FaultKind::LinkDrops { probability: 1.0, retransmit: 1.0 });
        let (f, dropped) = plan.comm_factor(1.0, 0);
        assert_eq!(f, 4.0); // 2.0 degradation × (1 + 1.0) retransmit
        assert!(dropped);
        let (f, dropped) = plan.comm_factor(11.0, 0);
        assert_eq!(f, 1.0);
        assert!(!dropped);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let plan = FaultPlan::new(42).with(0.0, 1.0, FaultKind::JitteredLink { amplitude: 0.3 });
        for pos in 0..64 {
            let (a, _) = plan.comm_factor(0.5, pos);
            let (b, _) = plan.comm_factor(0.5, pos);
            assert_eq!(a, b, "same (seed, pos) must draw the same jitter");
            assert!((1.0..=1.3).contains(&a), "jitter {a} out of [1, 1.3]");
        }
    }

    #[test]
    fn generate_is_deterministic_and_slow_but_correct() {
        let a = FaultPlan::generate(0xc4a05, 16, 0.1);
        let b = FaultPlan::generate(0xc4a05, 16, 0.1);
        assert_eq!(a, b);
        assert!((2..=5).contains(&a.windows.len()));
        for w in &a.windows {
            assert!(w.from >= 0.0 && w.until > w.from);
            match w.kind {
                FaultKind::Straggler { slowdown, gpu } => {
                    assert!(slowdown >= 1.0 && gpu < 16)
                }
                FaultKind::DegradedLink { factor } => assert!(factor >= 1.0),
                FaultKind::JitteredLink { amplitude } => assert!(amplitude >= 0.0),
                FaultKind::LinkDrops { probability, retransmit } => {
                    assert!((0.0..=1.0).contains(&probability) && retransmit >= 0.0)
                }
            }
        }
        let c = FaultPlan::generate(0xc4a06, 16, 0.1);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.compute_factor(0.0), 1.0);
        assert_eq!(plan.comm_factor(0.0, 3), (1.0, false));
    }
}
