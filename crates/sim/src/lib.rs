//! Discrete-event cluster simulator for the Lancet reproduction.
//!
//! Executes a training-graph instruction sequence on a simulated GPU
//! cluster, reproducing the execution semantics that make Lancet's
//! optimizations matter:
//!
//! * every device runs **two streams** — compute and communication — so a
//!   communication instruction only blocks instructions that *consume* its
//!   output, and any independent compute issued after it overlaps;
//! * instructions issue in **program order** per stream (reordering the
//!   sequence is exactly how the dW-scheduling pass creates overlap);
//! * collectives charge the hierarchical network model of `lancet-cost`,
//!   with irregular all-to-alls paying for *actual* (sampled) token loads
//!   rather than the padded capacity.
//!
//! Because the training program is SPMD and devices are symmetric, the
//! simulator tracks one representative device timeline; collectives embed
//! the cluster-wide cost (the max across devices is the common case the
//! network model already returns).
//!
//! The [`SimReport`] decomposes the iteration into non-overlapped compute,
//! non-overlapped communication, and overlapped time — the quantities of
//! paper Fig. 13 — and estimates peak memory for OOM detection (the red
//! crosses of Fig. 11).
//!
//! Unhealthy clusters are modelled by a seeded [`FaultPlan`] (straggler
//! GPUs, degraded/jittered links, transient drops) attached to the
//! [`SimConfig`]; the report's [`FaultSummary`] records what fired, and
//! the whole pipeline stays deterministic — same plan, same report, bit
//! for bit.

mod config;
mod engine;
mod fault;
mod gantt;
mod memory;
mod report;
mod trace;

pub use config::{PlacementSim, SimConfig};
pub use engine::{SimStats, Simulator};
pub use fault::{FaultKind, FaultPlan, FaultSummary, FaultWindow};
pub use gantt::render_gantt;
pub use memory::estimate_peak_memory;
pub use report::{SimReport, Stream, TimelineEvent};
pub use trace::to_chrome_trace;
