//! Liveness-based peak-memory estimation (for OOM detection, Fig. 11).

use lancet_ir::{Graph, TensorKind};
use std::collections::HashMap;

/// Bytes per parameter for master weight + gradient + SGD momentum.
const PARAM_STATE_BYTES: u64 = 3 * 4;

/// Bytes per activation element (mixed-precision training keeps
/// activations in half precision).
const ACTIVATION_BYTES: u64 = 2;

/// Estimates the peak device memory (bytes) of executing `graph` once:
/// persistent parameter state plus the maximum concurrently-live
/// activation footprint from a liveness sweep over the instruction
/// sequence.
///
/// # Example
///
/// ```
/// use lancet_ir::{Graph, Op, Role};
/// use lancet_sim::estimate_peak_memory;
///
/// let mut g = Graph::new();
/// let x = g.input("x", vec![1024, 1024]);
/// let y = g.emit(Op::Relu, &[x], Role::Forward)?;
/// let _z = g.emit(Op::Gelu, &[y], Role::Forward)?;
/// assert!(estimate_peak_memory(&g) > 0);
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
pub fn estimate_peak_memory(graph: &Graph) -> u64 {
    // Explicit optimizer-state tensors (`opt.*`) are counted once;
    // ordinary weights carry the master+grad+momentum convention.
    let param_bytes: u64 = graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Weight)
        .map(|t| {
            let vol = t.volume() as u64;
            if t.name.starts_with("opt.") { vol * 4 } else { vol * PARAM_STATE_BYTES }
        })
        .sum();

    // Inputs stay resident for the whole iteration.
    let input_bytes: u64 = graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Input)
        .map(|t| t.volume() as u64 * ACTIVATION_BYTES)
        .sum();

    // Liveness: a produced tensor occupies memory from its producing
    // instruction until its last use (or production, if never used).
    let mut last_use: HashMap<lancet_ir::TensorId, usize> = HashMap::new();
    for (pos, instr) in graph.instrs().iter().enumerate() {
        for &t in &instr.inputs {
            last_use.insert(t, pos);
        }
        for &o in &instr.outputs {
            last_use.entry(o).or_insert(pos);
        }
    }
    let mut alive: u64 = 0;
    let mut peak: u64 = 0;
    // Tensors to free after each position.
    let mut free_at: HashMap<usize, Vec<u64>> = HashMap::new();
    for (pos, instr) in graph.instrs().iter().enumerate() {
        for &o in &instr.outputs {
            let bytes = graph.tensor(o).volume() as u64 * ACTIVATION_BYTES;
            alive += bytes;
            let last = last_use.get(&o).copied().unwrap_or(pos);
            free_at.entry(last).or_default().push(bytes);
        }
        peak = peak.max(alive);
        if let Some(frees) = free_at.remove(&pos) {
            for b in frees {
                alive -= b;
            }
        }
    }
    param_bytes + input_bytes + peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_ir::{Op, Role};

    #[test]
    fn weights_count_three_copies() {
        let mut g = Graph::new();
        let _w = g.weight("w", vec![1000]);
        assert_eq!(estimate_peak_memory(&g), 1000 * PARAM_STATE_BYTES);
    }

    #[test]
    fn chain_frees_dead_activations() {
        // x -> a -> b -> c: at any point at most two activations live
        // (the producing one and its input).
        let mut g = Graph::new();
        let x = g.input("x", vec![100]);
        let a = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        let b = g.emit(Op::Relu, &[a], Role::Forward).unwrap();
        let _c = g.emit(Op::Relu, &[b], Role::Forward).unwrap();
        let peak = estimate_peak_memory(&g);
        // input (always live) + at most 2 live activations.
        assert_eq!(peak, (100 + 200) as u64 * ACTIVATION_BYTES);
    }

    #[test]
    fn fanout_keeps_tensor_alive() {
        // x used by the last instruction stays alive throughout.
        let mut g = Graph::new();
        let x = g.input("x", vec![100]);
        let a = g.emit(Op::Relu, &[x], Role::Forward).unwrap();
        let b = g.emit(Op::Relu, &[a], Role::Forward).unwrap();
        let _c = g.emit(Op::Add, &[a, b], Role::Forward).unwrap();
        // `a` lives across b's production.
        let peak = estimate_peak_memory(&g);
        assert!(peak >= (100 + 200) as u64 * ACTIVATION_BYTES);
    }

    #[test]
    fn bigger_batch_bigger_peak() {
        let build = |n: usize| {
            let mut g = Graph::new();
            let x = g.input("x", vec![n, 64]);
            let w = g.weight("w", vec![64, 64]);
            let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
            let _y = g.emit(Op::Gelu, &[h], Role::Forward).unwrap();
            g
        };
        assert!(estimate_peak_memory(&build(256)) > estimate_peak_memory(&build(16)));
    }
}
