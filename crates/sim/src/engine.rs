//! The two-stream discrete-event engine.

use crate::{estimate_peak_memory, FaultSummary, SimConfig, SimReport, Stream, TimelineEvent};
use lancet_cost::{CommModel, ComputeModel};
use lancet_ir::{Graph, Op, Shape, TensorId};
use std::collections::HashMap;

/// Simulates training-iteration graphs on a cluster.
///
/// See the crate docs for the execution semantics. The simulator is
/// deterministic: identical (graph, config) pairs produce identical
/// reports.
///
/// # Example
///
/// ```
/// use lancet_cost::{ClusterSpec, CommModel, ComputeModel};
/// use lancet_ir::{Graph, Op, Role};
/// use lancet_sim::{SimConfig, Simulator};
///
/// let spec = ClusterSpec::v100(1);
/// let sim = Simulator::new(
///     ComputeModel::new(spec.device.clone()),
///     CommModel::new(spec),
///     SimConfig::new(8),
/// );
/// let mut g = Graph::new();
/// let x = g.input("x", vec![512, 512]);
/// let w = g.weight("w", vec![512, 512]);
/// let _y = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward)?;
/// let report = sim.simulate(&g);
/// assert!(report.iteration_time > 0.0);
/// # Ok::<(), lancet_ir::IrError>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    compute: ComputeModel,
    comm: CommModel,
    cfg: SimConfig,
}

/// Iteration-time distribution over repeated simulations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// Number of simulated iterations.
    pub iterations: usize,
    /// Mean iteration time, seconds.
    pub mean: f64,
    /// Standard deviation, seconds.
    pub std: f64,
    /// Fastest iteration.
    pub min: f64,
    /// Slowest iteration.
    pub max: f64,
}

/// Deterministic xorshift sampler for irregular loads (no external RNG
/// dependency needed for a simulation jitter source).
fn jitter_unit(seed: u64, salt: u64) -> f64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x2545_f491_4f6c_dd1d;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

impl Simulator {
    /// Builds a simulator from ground-truth hardware models and a config.
    pub fn new(compute: ComputeModel, comm: CommModel, cfg: SimConfig) -> Self {
        Simulator { compute, comm, cfg }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs one training iteration of `graph` and reports the timeline
    /// and its decomposition.
    ///
    /// # Panics
    ///
    /// Panics if the graph is not in definition-before-use order
    /// (validate first).
    pub fn simulate(&self, graph: &Graph) -> SimReport {
        graph.validate().expect("simulate requires a valid graph");
        let mut tensor_ready: HashMap<TensorId, f64> = HashMap::new();
        let mut compute_free = 0.0f64;
        let mut comm_free = 0.0f64;
        let mut aux_free = 0.0f64;
        let mut timeline = Vec::with_capacity(graph.instrs().len());
        let mut compute_busy = 0.0;
        let mut comm_busy = 0.0;
        let mut faults = FaultSummary::default();
        let chunk_tokens = chunk_token_map(graph);
        // Placement replay: per-layer (inter_frac, load_factor) profiles
        // derived from the configured plan + histogram. All-to-alls are
        // mapped to MoE layers by arrival order — two per layer (dispatch
        // then combine), cycling for the backward pass — which is exact
        // for unpartitioned graphs and a documented approximation when
        // the partition pass splits a layer's exchanges into chunks.
        let placement_profiles = self.cfg.placement.as_ref().map(|p| {
            p.plan.layer_profiles(&p.traffic, self.comm.spec().net.gpus_per_node)
        });
        let mut a2a_seen = 0usize;
        let sparse_experts = if self.cfg.block_sparse_experts {
            irregular_expert_map(graph)
        } else {
            HashMap::new()
        };
        // Tile-interleave mode: per-tile completion times of tensors whose
        // producer was split along the capacity axis. A consumer the tile
        // chain cannot follow falls back to `tensor_ready` (= last tile),
        // which is the whole-buffer barrier.
        let tiles_cfg = self.cfg.tiles.max(1);
        let mut tile_ready: HashMap<TensorId, Vec<f64>> = HashMap::new();

        for (pos, instr) in graph.instrs().iter().enumerate() {
            let ready = instr
                .inputs
                .iter()
                .map(|t| tensor_ready.get(t).copied().unwrap_or(0.0))
                .fold(0.0f64, f64::max);
            let in_shapes: Vec<&Shape> = instr.inputs.iter().map(|&t| &graph.tensor(t).shape).collect();
            let out_shapes: Vec<&Shape> = instr.outputs.iter().map(|&t| &graph.tensor(t).shape).collect();

            // ---- Tile-interleave mode (Comet direction) -----------------
            // Uniform all-to-alls split into per-tile exchanges on the comm
            // stream; the expert ops they feed chain per tile on the
            // compute stream. Dependency edges are per tile: tile k's
            // compute starts when tile k's transfer lands, so later tiles'
            // transfers hide behind earlier tiles' compute.
            if tiles_cfg > 1
                && matches!(instr.op, Op::AllToAll)
                && in_shapes[0].rank() == 3
                && in_shapes[0].dim(1) >= tiles_cfg
            {
                let ordinal = a2a_seen;
                a2a_seen += 1;
                let profile =
                    placement_profiles.as_ref().map(|ps| ps[(ordinal / 2) % ps.len()]);
                let rows = in_shapes[0].dim(1);
                let payloads =
                    lancet_cost::tile_payload_bytes(rows, instr.op.comm_bytes(&in_shapes), tiles_cfg);
                let deps: Option<Vec<f64>> = tile_ready.get(&instr.inputs[0]).cloned();
                let mut ends = Vec::with_capacity(payloads.len());
                for (k, &bytes) in payloads.iter().enumerate() {
                    let dep = deps.as_ref().map_or(ready, |v| v[k]);
                    let start = dep.max(comm_free);
                    let mut dur = self.a2a_payload_time(bytes, profile);
                    let (factor, dropped) = self.cfg.fault_plan.comm_factor(start, pos);
                    if factor > 1.0 {
                        faults.comm_degraded += 1;
                        faults.injected_delay += dur * (factor - 1.0);
                        dur *= factor;
                    }
                    if dropped {
                        faults.link_drops += 1;
                    }
                    let end = start + dur;
                    comm_free = end;
                    comm_busy += dur;
                    timeline.push(TimelineEvent {
                        position: pos,
                        op: instr.op.name(),
                        stream: Stream::Comm,
                        start,
                        end,
                        tile: Some(k),
                    });
                    ends.push(end);
                }
                let last = *ends.last().expect("at least one tile");
                for &o in &instr.outputs {
                    tensor_ready.insert(o, last);
                }
                tile_ready.insert(instr.outputs[0], ends);
                continue;
            }
            if tiles_cfg > 1
                && tileable_compute(&instr.op)
                && instr.outputs.len() == 1
                && !sparse_experts.contains_key(&pos)
                && in_shapes[0].rank() == 3
                && instr.inputs.iter().any(|t| tile_ready.contains_key(t))
            {
                let full =
                    self.compute.op_time(&instr.op, &in_shapes, &out_shapes) * self.cfg.compute_overhead;
                let launch = self.compute.device().launch_overhead;
                let rows = in_shapes[0].dim(1).max(1);
                let payloads = lancet_cost::tile_payload_bytes(rows, rows as u64, tiles_cfg);
                let mut ends = Vec::with_capacity(payloads.len());
                for (k, &tile_rows) in payloads.iter().enumerate() {
                    let dep = instr
                        .inputs
                        .iter()
                        .map(|t| {
                            tile_ready
                                .get(t)
                                .map(|v| v[k])
                                .unwrap_or_else(|| tensor_ready.get(t).copied().unwrap_or(0.0))
                        })
                        .fold(0.0f64, f64::max);
                    let start = dep.max(compute_free);
                    // Each tile pays the kernel launch; the data-dependent
                    // remainder scales with its row share.
                    let mut dur =
                        launch + (full - launch).max(0.0) * (tile_rows as f64 / rows as f64);
                    let factor = self.cfg.fault_plan.compute_factor(start);
                    if factor > 1.0 {
                        faults.compute_slowed += 1;
                        faults.injected_delay += dur * (factor - 1.0);
                        dur *= factor;
                    }
                    let end = start + dur;
                    compute_free = end;
                    compute_busy += dur;
                    timeline.push(TimelineEvent {
                        position: pos,
                        op: instr.op.name(),
                        stream: Stream::Compute,
                        start,
                        end,
                        tile: Some(k),
                    });
                    ends.push(end);
                }
                let last = *ends.last().expect("at least one tile");
                tensor_ready.insert(instr.outputs[0], last);
                tile_ready.insert(instr.outputs[0], ends);
                continue;
            }
            // ---- Whole-operator charging (the default) ------------------

            let (stream, start, dur) = if instr.op.is_comm() {
                // Non-a2a collectives may use a second channel so they run
                // concurrently with MoE all-to-alls (paper §8).
                let aux = self.cfg.separate_collective_channel && !instr.op.is_all_to_all();
                let free = if aux { aux_free } else { comm_free };
                let start = ready.max(free);
                let profile = if instr.op.is_all_to_all() {
                    let ordinal = a2a_seen;
                    a2a_seen += 1;
                    placement_profiles.as_ref().map(|ps| ps[(ordinal / 2) % ps.len()])
                } else {
                    None
                };
                let mut dur = self.comm_duration(
                    &instr.op,
                    &in_shapes,
                    pos,
                    chunk_tokens.get(&pos).copied(),
                    profile,
                );
                // Injected link faults: degradation/jitter/drops stretch
                // the collective, deterministically per (plan, position).
                let (factor, dropped) = self.cfg.fault_plan.comm_factor(start, pos);
                if factor > 1.0 {
                    faults.comm_degraded += 1;
                    faults.injected_delay += dur * (factor - 1.0);
                    dur *= factor;
                }
                if dropped {
                    faults.link_drops += 1;
                }
                (if aux { Stream::CommAux } else { Stream::Comm }, start, dur)
            } else {
                let start = ready.max(compute_free);
                let mut dur =
                    self.compute.op_time(&instr.op, &in_shapes, &out_shapes) * self.cfg.compute_overhead;
                // MegaBlocks-style kernels: scale irregular expert compute
                // by the fraction of buffer rows actually occupied.
                if let Some(&slots) = sparse_experts.get(&pos) {
                    let padded = (in_shapes[0].dim(0) * in_shapes[0].dim(1)) as f64;
                    let fill = (slots as f64 / padded).clamp(0.0, 1.0);
                    let keep = 1.0 - self.cfg.load_jitter * jitter_unit(self.cfg.seed, pos as u64);
                    dur = self.compute.device().launch_overhead
                        + (dur - self.compute.device().launch_overhead) * fill * keep;
                }
                // Injected straggler: the representative (slowest) device
                // computes slower while a straggler window is active.
                let factor = self.cfg.fault_plan.compute_factor(start);
                if factor > 1.0 {
                    faults.compute_slowed += 1;
                    faults.injected_delay += dur * (factor - 1.0);
                    dur *= factor;
                }
                (Stream::Compute, start, dur)
            };
            let end = start + dur;
            match stream {
                Stream::Compute => {
                    compute_free = end;
                    compute_busy += dur;
                }
                Stream::Comm => {
                    comm_free = end;
                    comm_busy += dur;
                }
                Stream::CommAux => {
                    aux_free = end;
                    comm_busy += dur;
                }
            }
            for &o in &instr.outputs {
                tensor_ready.insert(o, end);
            }
            timeline.push(TimelineEvent {
                position: pos,
                op: instr.op.name(),
                stream,
                start,
                end,
                tile: None,
            });
        }

        let iteration_time = compute_free.max(comm_free).max(aux_free);
        let overlapped = overlap_time(&timeline);
        let peak_memory = (estimate_peak_memory(graph) as f64 * self.cfg.memory_overhead) as u64;
        let oom = peak_memory > self.compute.device().memory;
        SimReport {
            iteration_time,
            compute_busy,
            comm_busy,
            overlapped,
            peak_memory,
            oom,
            faults,
            timeline,
        }
    }

    /// Runs `n` iterations with varied load-sampler seeds and summarizes
    /// the iteration-time distribution (the per-iteration variation of
    /// irregular all-to-all loads is the only stochastic element).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the graph is invalid.
    ///
    /// # Example
    ///
    /// ```
    /// use lancet_cost::{ClusterSpec, CommModel, ComputeModel};
    /// use lancet_ir::{Graph, Op, Role};
    /// use lancet_sim::{SimConfig, Simulator};
    ///
    /// let spec = ClusterSpec::v100(1);
    /// let sim = Simulator::new(
    ///     ComputeModel::new(spec.device.clone()),
    ///     CommModel::new(spec),
    ///     SimConfig::new(8),
    /// );
    /// let mut g = Graph::new();
    /// let x = g.input("x", vec![64, 64]);
    /// let _ = g.emit(Op::Relu, &[x], Role::Forward)?;
    /// let stats = sim.simulate_n(&g, 4);
    /// assert_eq!(stats.iterations, 4);
    /// assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    /// # Ok::<(), lancet_ir::IrError>(())
    /// ```
    pub fn simulate_n(&self, graph: &Graph, n: usize) -> SimStats {
        assert!(n > 0, "need at least one iteration");
        let mut times = Vec::with_capacity(n);
        for i in 0..n {
            let mut cfg = self.cfg.clone();
            cfg.seed = self.cfg.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9);
            let sim = Simulator { compute: self.compute.clone(), comm: self.comm.clone(), cfg };
            times.push(sim.simulate(graph).iteration_time);
        }
        let mean = times.iter().sum::<f64>() / n as f64;
        let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        SimStats { iterations: n, mean, std: var.sqrt(), min, max }
    }

    /// Placement-aware all-to-all payload charge. The skewed model
    /// replaces the naive path; under hierarchical a2a node-aggregation
    /// already hides the per-peer skew, so only the busiest receiver's
    /// load factor stretches the exchange. Shared by whole-operator
    /// charging and the per-tile exchanges of tile-interleave mode.
    fn a2a_payload_time(&self, bytes: u64, profile: Option<lancet_cost::LayerProfile>) -> f64 {
        let gpus = self.cfg.gpus;
        match (self.cfg.hierarchical_a2a, profile) {
            (false, Some(p)) => {
                self.comm.all_to_all_time_skewed(bytes, gpus, p.inter_frac, p.load_factor)
            }
            (true, Some(p)) => {
                self.comm.hierarchical_all_to_all_time(bytes, gpus) * p.load_factor.max(1.0)
            }
            (false, None) => self.comm.all_to_all_time(bytes, gpus),
            (true, None) => self.comm.hierarchical_all_to_all_time(bytes, gpus),
        }
    }

    fn comm_duration(
        &self,
        op: &Op,
        ins: &[&Shape],
        pos: usize,
        chunk_tokens: Option<usize>,
        profile: Option<lancet_cost::LayerProfile>,
    ) -> f64 {
        let gpus = self.cfg.gpus;
        let a2a_payload = |bytes: u64| -> f64 { self.a2a_payload_time(bytes, profile) };
        match op {
            Op::AllToAll => {
                // Uniform all-to-all transmits the capacity-padded buffer.
                a2a_payload(op.comm_bytes(ins))
            }
            Op::AllToAllIrr => {
                // Irregular all-to-all transmits only actual slots: the
                // chunk's slot count (tokens × k, minus sampled drops),
                // never more than the padded capacity.
                let buf = ins[0];
                let (e, c, m) = (buf.dim(0), buf.dim(1), buf.dim(2));
                let padded_tokens = e * c;
                let tokens = chunk_tokens.unwrap_or(padded_tokens);
                let keep = 1.0 - self.cfg.load_jitter * jitter_unit(self.cfg.seed, pos as u64);
                let actual = ((tokens as f64 * keep) as usize).min(padded_tokens);
                let bytes = (actual * m * 4) as u64;
                // Two phases: tiny size exchange, then the payload.
                self.comm.all_to_all_time((4 * e) as u64, gpus) + a2a_payload(bytes)
            }
            Op::AllReduce => {
                let bytes = op.comm_bytes(ins);
                self.comm.all_reduce_time(bytes, gpus)
            }
            Op::AllGather { .. } => self.comm.all_gather_time(op.comm_bytes(ins), gpus),
            Op::ReduceScatter { .. } => self.comm.reduce_scatter_time(op.comm_bytes(ins), gpus),
            _ => unreachable!("comm_duration called on compute op"),
        }
    }
}

/// Ops the tile chain may follow through the expert region: row-wise
/// along the capacity axis, so per-tile completion times are meaningful.
/// Mirrors the op set `lancet_core::apply_tile_schedule` tiles.
fn tileable_compute(op: &Op) -> bool {
    matches!(
        op,
        Op::BatchedMatMul { .. }
            | Op::ExpertsLayout { .. }
            | Op::ExpertsLayoutInv { .. }
            | Op::BiasAdd
            | Op::Gelu
            | Op::Silu
            | Op::Relu
            | Op::Dropout { .. }
            | Op::Scale { .. }
            | Op::Add
            | Op::Mul
    )
}

/// For every irregular all-to-all position, the token count of the chunk
/// that feeds it, recovered by following the counts-tensor producer chain
/// back to its `MoeDispatchIrr`.
fn chunk_token_map(graph: &Graph) -> HashMap<usize, usize> {
    let producers = graph.producer_positions();
    let mut map = HashMap::new();
    for (pos, instr) in graph.instrs().iter().enumerate() {
        if !matches!(instr.op, Op::AllToAllIrr) {
            continue;
        }
        // input[1] is the counts tensor; walk producers until the
        // originating dispatch is found.
        let mut cursor = instr.inputs[1];
        for _ in 0..graph.instrs().len() {
            let Some(&p) = producers.get(&cursor) else { break };
            let producer = &graph.instrs()[p];
            match producer.op {
                Op::MoeDispatchIrr { .. } => {
                    // Slot count = the assign tensor's length (tokens × k).
                    let assign = &graph.tensor(producer.inputs[1]).shape;
                    map.insert(pos, assign.volume());
                    break;
                }
                Op::AllToAllIrr => {
                    cursor = producer.inputs[1];
                }
                _ => break,
            }
        }
    }
    map
}

/// For every expert-FFN compute instruction fed (through layout ops) by
/// an irregular all-to-all, the actual slot count of its chunk — the rows
/// a block-sparse kernel would process.
fn irregular_expert_map(graph: &Graph) -> HashMap<usize, usize> {
    let producers = graph.producer_positions();
    let chunk_tokens = chunk_token_map(graph);
    let mut map = HashMap::new();
    for (pos, instr) in graph.instrs().iter().enumerate() {
        if !matches!(instr.op, Op::BatchedMatMul { .. } | Op::Gelu | Op::Silu | Op::Mul) {
            continue;
        }
        // Walk input[0]'s producer chain through shape-preserving expert
        // ops until an irregular all-to-all is found.
        let mut cursor = instr.inputs[0];
        for _ in 0..graph.instrs().len() {
            let Some(&p) = producers.get(&cursor) else { break };
            match &graph.instrs()[p].op {
                Op::AllToAllIrr => {
                    if let Some(&slots) = chunk_tokens.get(&p) {
                        map.insert(pos, slots);
                    }
                    break;
                }
                Op::ExpertsLayout { .. }
                | Op::ExpertsLayoutInv { .. }
                | Op::BatchedMatMul { .. }
                | Op::Gelu
                | Op::Silu
                | Op::Mul => {
                    cursor = graph.instrs()[p].inputs[0];
                }
                _ => break,
            }
        }
    }
    map
}

fn overlap_time(timeline: &[TimelineEvent]) -> f64 {
    // Each stream's busy intervals are disjoint and sorted by start time;
    // sum the pairwise intersections with a two-pointer sweep.
    let mut compute: Vec<(f64, f64)> = Vec::new();
    let mut comm: Vec<(f64, f64)> = Vec::new();
    for e in timeline {
        if e.end > e.start {
            match e.stream {
                Stream::Compute => compute.push((e.start, e.end)),
                // Both channels count as communication busy intervals;
                // merge them (they may overlap each other).
                Stream::Comm | Stream::CommAux => comm.push((e.start, e.end)),
            }
        }
    }
    comm.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    // Merge overlapping aux/primary intervals.
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(comm.len());
    for (s, e) in comm {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let comm = merged;
    let (mut i, mut j) = (0usize, 0usize);
    let mut total = 0.0;
    while i < compute.len() && j < comm.len() {
        let (a0, a1) = compute[i];
        let (b0, b1) = comm[j];
        let lo = a0.max(b0);
        let hi = a1.min(b1);
        if hi > lo {
            total += hi - lo;
        }
        if a1 <= b1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lancet_cost::ClusterSpec;
    use lancet_ir::Role;

    fn sim(gpus: usize) -> Simulator {
        let spec = ClusterSpec::v100(gpus.div_ceil(8));
        Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig::new(gpus),
        )
    }

    /// compute → a2a → dependent compute: no overlap possible.
    fn dependent_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", vec![16, 128, 512]);
        let w = g.weight("w", vec![512, 512]);
        let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let t = g.emit(Op::AllToAll, &[h], Role::Comm).unwrap();
        let _y = g.emit(Op::MatMul { transpose_b: false }, &[t, w], Role::Forward).unwrap();
        g
    }

    /// a2a with an independent compute op issued right after it.
    fn overlappable_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", vec![16, 128, 512]);
        let w = g.weight("w", vec![512, 512]);
        let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let t = g.emit(Op::AllToAll, &[h], Role::Comm).unwrap();
        let _indep = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let _y = g.emit(Op::MatMul { transpose_b: false }, &[t, w], Role::Forward).unwrap();
        g
    }

    #[test]
    fn dependencies_serialize() {
        let r = sim(16).simulate(&dependent_graph());
        assert!(r.overlapped < 1e-9, "dependent graph must not overlap");
        assert!((r.iteration_time - (r.compute_busy + r.comm_busy)).abs() < 1e-9);
    }

    #[test]
    fn independent_compute_overlaps_comm() {
        let r = sim(16).simulate(&overlappable_graph());
        assert!(r.overlapped > 0.0, "independent op should overlap the all-to-all");
        assert!(r.iteration_time < r.compute_busy + r.comm_busy);
    }

    #[test]
    fn reordering_changes_overlap() {
        // Issue the dependent op first and the independent one last: the
        // dependent op waits for the a2a, and only the independent tail
        // overlaps — program order matters, which is what the dW pass
        // exploits.
        let mut g = Graph::new();
        let x = g.input("x", vec![16, 128, 512]);
        let w = g.weight("w", vec![512, 512]);
        let h = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let t = g.emit(Op::AllToAll, &[h], Role::Comm).unwrap();
        let _y = g.emit(Op::MatMul { transpose_b: false }, &[t, w], Role::Forward).unwrap();
        let _indep = g.emit(Op::MatMul { transpose_b: false }, &[x, w], Role::Forward).unwrap();
        let bad = sim(16).simulate(&g);
        let good = sim(16).simulate(&overlappable_graph());
        assert!(good.iteration_time <= bad.iteration_time + 1e-12);
    }

    #[test]
    fn more_gpus_longer_alltoall() {
        let g = dependent_graph();
        let r16 = sim(16).simulate(&g);
        let r32 = sim(32).simulate(&g);
        assert!(r32.comm_busy > r16.comm_busy);
    }

    #[test]
    fn deterministic() {
        let g = overlappable_graph();
        let a = sim(16).simulate(&g);
        let b = sim(16).simulate(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn irregular_cheaper_than_uniform() {
        // Same buffer, but the irregular path only moves actual tokens
        // (chunk = half the padded capacity here).
        let build = |irregular: bool| {
            let mut g = Graph::new();
            // 8 experts, capacity 64, hidden 512 → padded 8*64 = 512 rows;
            // the chunk carries 16×16 = 256 tokens.
            let x = g.input("x", vec![16, 16, 512]);
            let wg = g.weight("gate.w", vec![512, 8]);
            if irregular {
                let cap0 = g.emit(Op::Zeros { shape: vec![8] }, &[], Role::Forward).unwrap();
                let gate = g
                    .emit_multi(
                        Op::GateChunk { kind: lancet_ir::GateKind::Switch, experts: 8, capacity: 64, parts: 1 },
                        &[x, wg, cap0],
                        Role::Forward,
                    )
                    .unwrap();
                let d = g
                    .emit_multi(Op::MoeDispatchIrr { experts: 8, capacity: 64, parts: 1 }, &[x, gate[0], gate[1]], Role::Forward)
                    .unwrap();
                let _ = g.emit_multi(Op::AllToAllIrr, &[d[0], d[1]], Role::Comm).unwrap();
            } else {
                let gate = g
                    .emit_multi(
                        Op::Gate { kind: lancet_ir::GateKind::Switch, experts: 8, capacity: 64 },
                        &[x, wg],
                        Role::Forward,
                    )
                    .unwrap();
                let d = g
                    .emit(Op::MoeDispatch { experts: 8, capacity: 64 }, &[x, gate[0], gate[1]], Role::Forward)
                    .unwrap();
                let _ = g.emit(Op::AllToAll, &[d], Role::Comm).unwrap();
            }
            g
        };
        let uniform = sim(16).simulate(&build(false));
        let irregular = sim(16).simulate(&build(true));
        assert!(
            irregular.comm_busy < uniform.comm_busy,
            "irregular {} vs uniform {}",
            irregular.comm_busy,
            uniform.comm_busy
        );
    }

    #[test]
    fn block_sparse_experts_cut_irregular_compute() {
        // A partitioned pipeline where the chunk fills half the padded
        // capacity: block-sparse kernels should charge ~half the expert
        // compute.
        let mut g = Graph::new();
        let x = g.input("x", vec![16, 16, 512]); // 256 tokens
        let wg = g.weight("gate.w", vec![512, 8]);
        let w1 = g.weight("expert.w1", vec![4, 512, 1024]);
        let cap0 = g.emit(Op::Zeros { shape: vec![8] }, &[], Role::Forward).unwrap();
        let gate = g
            .emit_multi(
                Op::GateChunk { kind: lancet_ir::GateKind::Switch, experts: 8, capacity: 64, parts: 1 },
                &[x, wg, cap0],
                Role::Forward,
            )
            .unwrap();
        let d = g
            .emit_multi(Op::MoeDispatchIrr { experts: 8, capacity: 64, parts: 1 }, &[x, gate[0], gate[1]], Role::Forward)
            .unwrap();
        let a2a = g.emit_multi(Op::AllToAllIrr, &[d[0], d[1]], Role::Comm).unwrap();
        let loc = g.emit(Op::ExpertsLayout { gpus: 2 }, &[a2a[0]], Role::Forward).unwrap();
        let _h = g.emit(Op::BatchedMatMul { transpose_b: false }, &[loc, w1], Role::Forward).unwrap();

        let spec = ClusterSpec::v100(2);
        let dense = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec.clone()),
            SimConfig::new(16),
        )
        .simulate(&g);
        let sparse = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig { block_sparse_experts: true, ..SimConfig::new(16) },
        )
        .simulate(&g);
        // 256 tokens over 8×64 = 512 padded rows → roughly half the
        // expert-matmul work (compare the kernel itself; the gate and
        // dispatch around it are unaffected).
        let bmm_time = |r: &crate::SimReport| {
            r.timeline
                .iter()
                .find(|e| e.op == "batched_matmul")
                .map(|e| e.duration())
                .expect("bmm present")
        };
        let (d, s) = (bmm_time(&dense), bmm_time(&sparse));
        assert!(s < d * 0.65, "sparse bmm {s} !< 0.65 × dense bmm {d}");
        assert!(sparse.compute_busy < dense.compute_busy);
    }

    #[test]
    fn oom_detected_for_huge_graph() {
        let mut g = Graph::new();
        // ~48 GB of weights exceeds a V100's 32 GB.
        let _w = g.weight("w", vec![4096, 1_000_000]);
        let r = sim(8).simulate(&g);
        assert!(r.oom);
    }

    #[test]
    fn simulate_n_summarizes_load_variation() {
        // A graph with irregular all-to-alls varies across seeds; one with
        // only deterministic ops does not.
        let s = sim(16);
        let det = s.simulate_n(&dependent_graph(), 5);
        assert_eq!(det.iterations, 5);
        assert!(det.std < 1e-12, "deterministic graph varied: {det:?}");
        assert!((det.mean - det.min).abs() < 1e-12);

        let mut g = Graph::new();
        let x = g.input("x", vec![16, 16, 512]);
        let wg = g.weight("gate.w", vec![512, 8]);
        let cap0 = g.emit(Op::Zeros { shape: vec![8] }, &[], Role::Forward).unwrap();
        let gate = g
            .emit_multi(
                Op::GateChunk { kind: lancet_ir::GateKind::Switch, experts: 8, capacity: 64, parts: 1 },
                &[x, wg, cap0],
                Role::Forward,
            )
            .unwrap();
        let d = g
            .emit_multi(Op::MoeDispatchIrr { experts: 8, capacity: 64, parts: 1 }, &[x, gate[0], gate[1]], Role::Forward)
            .unwrap();
        let _ = g.emit_multi(Op::AllToAllIrr, &[d[0], d[1]], Role::Comm).unwrap();
        let irr = s.simulate_n(&g, 8);
        assert!(irr.std > 0.0, "irregular loads should vary across seeds");
        assert!(irr.min <= irr.mean && irr.mean <= irr.max);
    }

    #[test]
    fn straggler_slows_compute_only() {
        use crate::{FaultKind, FaultPlan};
        let g = dependent_graph();
        let healthy = sim(16).simulate(&g);
        let spec = ClusterSpec::v100(2);
        let plan = FaultPlan::new(1).with(
            0.0,
            f64::INFINITY,
            FaultKind::Straggler { gpu: 0, slowdown: 2.0 },
        );
        let faulted = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig::new(16).with_fault_plan(plan),
        )
        .simulate(&g);
        assert!((faulted.compute_busy - healthy.compute_busy * 2.0).abs() < 1e-12);
        assert_eq!(faulted.comm_busy, healthy.comm_busy);
        assert_eq!(faulted.faults.compute_slowed, 2);
        assert_eq!(faulted.faults.comm_degraded, 0);
        assert!(faulted.faults.injected_delay > 0.0);
        assert!(!healthy.faults.any());
    }

    #[test]
    fn degraded_link_slows_comm_only() {
        use crate::{FaultKind, FaultPlan};
        let g = dependent_graph();
        let healthy = sim(16).simulate(&g);
        let spec = ClusterSpec::v100(2);
        let plan =
            FaultPlan::new(1).with(0.0, f64::INFINITY, FaultKind::DegradedLink { factor: 3.0 });
        let faulted = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig::new(16).with_fault_plan(plan),
        )
        .simulate(&g);
        assert!((faulted.comm_busy - healthy.comm_busy * 3.0).abs() < 1e-12);
        assert_eq!(faulted.compute_busy, healthy.compute_busy);
        assert_eq!(faulted.faults.comm_degraded, 1);
        assert_eq!(faulted.faults.link_drops, 0);
    }

    #[test]
    fn link_drops_charge_retransmission() {
        use crate::{FaultKind, FaultPlan};
        let g = dependent_graph();
        let healthy = sim(16).simulate(&g);
        let spec = ClusterSpec::v100(2);
        let plan = FaultPlan::new(1).with(
            0.0,
            f64::INFINITY,
            FaultKind::LinkDrops { probability: 1.0, retransmit: 1.0 },
        );
        let faulted = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig::new(16).with_fault_plan(plan),
        )
        .simulate(&g);
        assert_eq!(faulted.faults.link_drops, 1);
        assert!((faulted.comm_busy - healthy.comm_busy * 2.0).abs() < 1e-12);
    }

    #[test]
    fn faulted_simulation_is_deterministic() {
        use crate::FaultPlan;
        let g = overlappable_graph();
        let build = || {
            let spec = ClusterSpec::v100(2);
            Simulator::new(
                ComputeModel::new(spec.device.clone()),
                CommModel::new(spec),
                SimConfig::new(16).with_fault_plan(FaultPlan::generate(0xfeed, 16, 0.05)),
            )
        };
        let a = build().simulate(&g);
        let b = build().simulate(&g);
        assert_eq!(a, b, "same fault seed must reproduce the report bit for bit");
    }

    #[test]
    fn uniform_placement_on_balanced_traffic_matches_stock() {
        use lancet_cost::{ExpertTraffic, PlacementPlan};
        let g = dependent_graph();
        let spec = ClusterSpec::v100(2);
        let stock = sim(16).simulate(&g);
        // Balanced loads + uncorrelated transitions under the uniform
        // plan degrade to the stock uniform charge exactly.
        let mut traffic = ExpertTraffic::new(2, 16, 2048);
        for l in 0..2 {
            for e in 0..16 {
                traffic.record_load(l, e, 64);
            }
        }
        for i in 0..16 {
            for j in 0..16 {
                traffic.record_transition(0, i, j, 4);
            }
        }
        let placed = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig::new(16).with_placement(PlacementPlan::uniform(2, 16, 16), traffic),
        )
        .simulate(&g);
        assert!((placed.iteration_time - stock.iteration_time).abs() < 1e-12);
    }

    #[test]
    fn optimized_placement_beats_uniform_on_skewed_traffic() {
        use lancet_cost::{optimize_placement, ExpertTraffic, PlacementOptions, PlacementPlan};
        let g = dependent_graph();
        let spec = ClusterSpec::v100(2);
        // 32 experts on 16 devices: the uniform plan co-locates the two
        // hottest Zipf experts on device 0; the search pairs hot with
        // cold, lowering the busiest receiver's load factor.
        let traffic = ExpertTraffic::synthetic(1, 32, 2048, 1.2, 0.8, 4096, 0x91ACE);
        let (plan, _) = optimize_placement(&traffic, 16, 8, &PlacementOptions::default());
        let run = |plan: PlacementPlan| {
            Simulator::new(
                ComputeModel::new(spec.device.clone()),
                CommModel::new(spec.clone()),
                SimConfig::new(16).with_placement(plan, traffic.clone()),
            )
            .simulate(&g)
        };
        let uniform = run(PlacementPlan::uniform(1, 32, 16));
        let optimized = run(plan.clone());
        assert!(
            optimized.iteration_time < uniform.iteration_time,
            "optimized {} !< uniform {}",
            optimized.iteration_time,
            uniform.iteration_time
        );
        // Replay is deterministic: same plan + traffic, same report.
        assert_eq!(run(plan.clone()), optimized);
    }

    #[test]
    fn compute_overhead_scales_time() {
        let g = dependent_graph();
        let spec = ClusterSpec::v100(2);
        let base = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec.clone()),
            SimConfig::new(16),
        )
        .simulate(&g);
        let slow = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec),
            SimConfig::new(16).with_compute_overhead(1.5),
        )
        .simulate(&g);
        assert!(slow.compute_busy > base.compute_busy * 1.4);
        assert_eq!(slow.comm_busy, base.comm_busy);
    }
}
