//! Simulation results: timeline and the Fig. 13 decomposition.

use crate::FaultSummary;

/// Which hardware stream an event executed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// The compute stream.
    Compute,
    /// The (primary) communication stream carrying all-to-alls.
    Comm,
    /// The secondary communication channel (all-reduce / all-gather /
    /// reduce-scatter) when `separate_collective_channel` is enabled.
    CommAux,
}

/// One executed instruction on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Position of the instruction in the simulated program.
    pub position: usize,
    /// Operator name.
    pub op: &'static str,
    /// Stream the instruction ran on.
    pub stream: Stream,
    /// Start time, seconds from iteration start.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Tile index when the instruction was split by tile-interleave mode
    /// (`SimConfig::tiles` ≥ 2); `None` for whole-operator events. One
    /// instruction then contributes several events sharing a `position`.
    pub tile: Option<usize>,
}

impl TimelineEvent {
    /// Event duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The outcome of simulating one training iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end iteration time, seconds.
    pub iteration_time: f64,
    /// Total busy time of the compute stream.
    pub compute_busy: f64,
    /// Total busy time of the communication stream.
    pub comm_busy: f64,
    /// Time during which both streams were busy (the overlap the paper
    /// maximizes).
    pub overlapped: f64,
    /// Estimated peak device memory in bytes.
    pub peak_memory: u64,
    /// Whether the estimate exceeds device memory.
    pub oom: bool,
    /// What the injected [`FaultPlan`](crate::FaultPlan) actually did to
    /// this iteration (all zero on a healthy run).
    pub faults: FaultSummary,
    /// Full event timeline (program order).
    pub timeline: Vec<TimelineEvent>,
}

impl SimReport {
    /// Communication time not hidden behind compute (Fig. 13's
    /// "Non-overlapped Communication").
    pub fn exposed_comm(&self) -> f64 {
        (self.comm_busy - self.overlapped).max(0.0)
    }

    /// Compute time not overlapped with communication.
    pub fn exposed_compute(&self) -> f64 {
        (self.compute_busy - self.overlapped).max(0.0)
    }

    /// Fraction of communication hidden behind compute, in `[0, 1]`.
    pub fn overlap_ratio(&self) -> f64 {
        if self.comm_busy <= 0.0 {
            1.0
        } else {
            (self.overlapped / self.comm_busy).min(1.0)
        }
    }

    /// Throughput in iterations/second.
    pub fn throughput(&self) -> f64 {
        1.0 / self.iteration_time
    }

    /// Total busy time per operator name, descending — the raw material
    /// of breakdown figures.
    pub fn time_by_op(&self) -> Vec<(&'static str, f64)> {
        let mut acc: std::collections::HashMap<&'static str, f64> = Default::default();
        for e in &self.timeline {
            *acc.entry(e.op).or_insert(0.0) += e.duration();
        }
        let mut v: Vec<(&'static str, f64)> = acc.into_iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite durations"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            iteration_time: 10.0,
            compute_busy: 7.0,
            comm_busy: 5.0,
            overlapped: 2.0,
            peak_memory: 1000,
            oom: false,
            faults: FaultSummary::default(),
            timeline: vec![TimelineEvent { position: 0, op: "matmul", stream: Stream::Compute, start: 0.0, end: 7.0, tile: None }],
        }
    }

    #[test]
    fn decomposition_arithmetic() {
        let r = report();
        assert_eq!(r.exposed_comm(), 3.0);
        assert_eq!(r.exposed_compute(), 5.0);
        assert!((r.overlap_ratio() - 0.4).abs() < 1e-12);
        assert!((r.throughput() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn event_duration() {
        let r = report();
        assert_eq!(r.timeline[0].duration(), 7.0);
    }

    #[test]
    fn time_by_op_aggregates_and_sorts() {
        let mut r = report();
        r.timeline.push(TimelineEvent {
            position: 1,
            op: "all_to_all",
            stream: Stream::Comm,
            start: 7.0,
            end: 10.0,
            tile: None,
        });
        r.timeline.push(TimelineEvent {
            position: 2,
            op: "matmul",
            stream: Stream::Compute,
            start: 10.0,
            end: 11.0,
            tile: None,
        });
        let by_op = r.time_by_op();
        assert_eq!(by_op[0], ("matmul", 8.0));
        assert_eq!(by_op[1], ("all_to_all", 3.0));
    }

    #[test]
    fn zero_comm_is_fully_overlapped() {
        let mut r = report();
        r.comm_busy = 0.0;
        r.overlapped = 0.0;
        assert_eq!(r.overlap_ratio(), 1.0);
    }
}
