//! ASCII Gantt rendering of simulated timelines — a terminal-friendly
//! complement to the Chrome-trace export for eyeballing overlap.

use crate::{SimReport, Stream};

/// Renders the two streams as fixed-width ASCII tracks.
///
/// Each column is `iteration_time / width`; compute cells draw `#`,
/// communication cells `=`, idle `.`. Events produced by the simulator's
/// tile-interleave mode alternate marks by tile parity — `#`/`+` on the
/// compute track, `=`/`-` on the comm track — so the per-tile
/// interleaving is visible at a glance. A cell is marked when any
/// instruction of that stream is active within its time slice (the
/// earliest event in timeline order wins the cell). When the report
/// carries injected faults, a trailing line summarizes what fired
/// (stretched compute, degraded collectives, retransmissions).
///
/// # Example
///
/// ```
/// use lancet_sim::{render_gantt, FaultSummary, SimReport, Stream, TimelineEvent};
///
/// let report = SimReport {
///     iteration_time: 4.0,
///     compute_busy: 2.0,
///     comm_busy: 2.0,
///     overlapped: 0.0,
///     peak_memory: 0,
///     oom: false,
///     faults: FaultSummary::default(),
///     timeline: vec![
///         TimelineEvent { position: 0, op: "matmul", stream: Stream::Compute, start: 0.0, end: 2.0, tile: None },
///         TimelineEvent { position: 1, op: "all_to_all", stream: Stream::Comm, start: 2.0, end: 4.0, tile: None },
///     ],
/// };
/// let chart = render_gantt(&report, 8);
/// assert!(chart.contains("compute |####....|"));
/// assert!(chart.contains("comm    |....====|"));
/// ```
#[allow(clippy::needless_range_loop)] // column index maps to a time slice
pub fn render_gantt(report: &SimReport, width: usize) -> String {
    let width = width.max(1);
    let total = report.iteration_time.max(f64::MIN_POSITIVE);
    let cell = total / width as f64;
    let mut rows = [vec!['.'; width], vec!['.'; width]];
    for e in &report.timeline {
        let idx = match e.stream {
            Stream::Compute => 0,
            Stream::Comm | Stream::CommAux => 1,
        };
        if e.end <= e.start {
            continue;
        }
        let mark = match (idx, e.tile) {
            (0, Some(t)) if t % 2 == 1 => '+',
            (0, _) => '#',
            (_, Some(t)) if t % 2 == 1 => '-',
            (_, _) => '=',
        };
        let first = ((e.start / cell).floor() as usize).min(width - 1);
        let last = (((e.end / cell).ceil() as usize).max(first + 1)).min(width);
        for c in first..last {
            if rows[idx][c] == '.' {
                rows[idx][c] = mark;
            }
        }
    }
    let draw = |cells: &[char]| -> String { cells.iter().collect() };
    let mut chart = format!(
        "compute |{}|\ncomm    |{}|\n{:>9} {:.1} ms, {:.0}% of comm hidden\n",
        draw(&rows[0]),
        draw(&rows[1]),
        "total",
        report.iteration_time * 1e3,
        report.overlap_ratio() * 100.0
    );
    if report.faults.any() {
        chart.push_str(&format!(
            "{:>9} {} compute op(s) slowed, {} collective(s) degraded, {} drop(s), +{:.1} ms injected\n",
            "faults",
            report.faults.compute_slowed,
            report.faults.comm_degraded,
            report.faults.link_drops,
            report.faults.injected_delay * 1e3
        ));
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimelineEvent;

    fn overlapping_report() -> SimReport {
        SimReport {
            iteration_time: 4.0,
            compute_busy: 3.0,
            comm_busy: 2.0,
            overlapped: 1.0,
            peak_memory: 0,
            oom: false,
            faults: crate::FaultSummary::default(),
            timeline: vec![
                TimelineEvent { position: 0, op: "matmul", stream: Stream::Compute, start: 0.0, end: 3.0, tile: None },
                TimelineEvent { position: 1, op: "all_to_all", stream: Stream::Comm, start: 2.0, end: 4.0, tile: None },
            ],
        }
    }

    #[test]
    fn overlap_visible_in_chart() {
        let chart = render_gantt(&overlapping_report(), 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "compute |######..|");
        assert_eq!(lines[1], "comm    |....====|");
        // Columns 4–5 busy on both streams: the overlap region.
        assert!(lines[2].contains("50% of comm hidden"));
    }

    #[test]
    fn zero_width_clamped() {
        let chart = render_gantt(&overlapping_report(), 0);
        assert!(chart.contains("compute |#|"));
    }

    #[test]
    fn empty_timeline_draws_idle() {
        let mut r = overlapping_report();
        r.timeline.clear();
        let chart = render_gantt(&r, 4);
        assert!(chart.contains("compute |....|"));
    }

    #[test]
    fn tile_events_stripe_by_parity() {
        let r = SimReport {
            iteration_time: 4.0,
            compute_busy: 2.0,
            comm_busy: 2.0,
            overlapped: 0.0,
            peak_memory: 0,
            oom: false,
            faults: crate::FaultSummary::default(),
            timeline: vec![
                TimelineEvent { position: 0, op: "all_to_all", stream: Stream::Comm, start: 0.0, end: 1.0, tile: Some(0) },
                TimelineEvent { position: 0, op: "all_to_all", stream: Stream::Comm, start: 1.0, end: 2.0, tile: Some(1) },
                TimelineEvent { position: 1, op: "batched_matmul", stream: Stream::Compute, start: 1.0, end: 2.0, tile: Some(0) },
                TimelineEvent { position: 1, op: "batched_matmul", stream: Stream::Compute, start: 2.0, end: 3.0, tile: Some(1) },
            ],
        };
        let chart = render_gantt(&r, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "compute |..##++..|", "{chart}");
        assert_eq!(lines[1], "comm    |==--....|", "{chart}");
    }

    #[test]
    fn faults_render_a_summary_line() {
        let mut r = overlapping_report();
        assert!(
            !render_gantt(&r, 8).contains("faults"),
            "healthy charts stay fault-line free"
        );
        r.faults = crate::FaultSummary {
            compute_slowed: 2,
            comm_degraded: 1,
            link_drops: 1,
            injected_delay: 0.0042,
        };
        let chart = render_gantt(&r, 8);
        assert!(
            chart.contains("faults 2 compute op(s) slowed, 1 collective(s) degraded, 1 drop(s), +4.2 ms injected"),
            "{chart}"
        );
    }
}
