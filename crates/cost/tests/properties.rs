//! Property-based tests for the cost models.

use lancet_cost::{CachingOpProfiler, ClusterSpec, CommCostModel, CommModel, ComputeModel};
use lancet_ir::{Op, Shape};
use proptest::prelude::*;

proptest! {
    /// All-to-all time is monotone in bytes for any cluster size.
    #[test]
    fn alltoall_monotone_in_bytes(nodes in 1usize..9, exp in 10u32..28) {
        let m = CommModel::new(ClusterSpec::v100(nodes));
        let gpus = nodes * 8;
        let a = m.all_to_all_time(1u64 << exp, gpus);
        let b = m.all_to_all_time(1u64 << (exp + 1), gpus);
        prop_assert!(b >= a);
    }

    /// More nodes never make the same transfer faster (NIC bottleneck).
    #[test]
    fn alltoall_monotone_in_nodes(exp in 16u32..26) {
        let bytes = 1u64 << exp;
        let mut prev = 0.0;
        for nodes in 1..=8 {
            let m = CommModel::new(ClusterSpec::v100(nodes));
            let t = m.all_to_all_time(bytes, nodes * 8);
            prop_assert!(t >= prev - 1e-12, "nodes {}: {} < {}", nodes, t, prev);
            prev = t;
        }
    }

    /// The interpolated cost model stays within a tight band of the
    /// ground truth everywhere in its profiled range.
    #[test]
    fn interpolation_error_bounded(nodes in 1usize..5, bytes in 2048u64..(1u64 << 27)) {
        let spec = ClusterSpec::a100(nodes);
        let gpus = nodes * 8;
        let truth = CommModel::new(spec);
        let model = CommCostModel::build(&truth, 1 << 28, gpus);
        let predicted = model.query(bytes);
        let actual = truth.all_to_all_time(bytes, gpus);
        let err = (predicted - actual).abs() / actual;
        prop_assert!(err < 0.15, "{} bytes: err {:.3}", bytes, err);
    }

    /// Static-shape partitioned queries are monotone in the part count.
    #[test]
    fn partitioned_query_monotone(parts in 1usize..16) {
        let spec = ClusterSpec::v100(2);
        let truth = CommModel::new(spec);
        let model = CommCostModel::build(&truth, 1 << 28, 16);
        let whole = model.query_partitioned(1 << 25, parts);
        let finer = model.query_partitioned(1 << 25, parts * 2);
        prop_assert!(finer <= whole + 1e-12);
    }

    /// Compute-op latency is monotone in the matmul extent and always at
    /// least the launch overhead.
    #[test]
    fn op_time_monotone(n_pow in 4u32..9) {
        let m = ComputeModel::new(ClusterSpec::a100(1).device);
        let op = Op::MatMul { transpose_b: false };
        let t_of = |n: usize| {
            let x = Shape::new(vec![n, n]);
            let y = Shape::new(vec![n, n]);
            m.op_time(&op, &[&x, &x.clone()], &[&y])
        };
        let small = t_of(1 << n_pow);
        let large = t_of(1 << (n_pow + 1));
        prop_assert!(large > small);
        prop_assert!(small >= m.device().launch_overhead);
    }

    /// The profiler is deterministic and cache-transparent: repeated
    /// queries return the identical value.
    #[test]
    fn profiler_idempotent(rows in 1usize..128, cols in 1usize..128) {
        let p = CachingOpProfiler::new(ComputeModel::new(ClusterSpec::v100(1).device));
        let s = Shape::new(vec![rows, cols]);
        let a = p.profile(&Op::Relu, &[&s]).unwrap();
        let b = p.profile(&Op::Relu, &[&s]).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(p.stats().misses, 1);
    }
}
