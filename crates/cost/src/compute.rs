//! Ground-truth compute latency model (roofline + launch overhead +
//! small-kernel utilization).

use crate::DeviceSpec;
use lancet_ir::{Op, Shape};

/// Analytical execution-time model for compute instructions on one device.
///
/// Latency is `launch_overhead + max(t_flops, t_mem)` where the FLOP term
/// is derated by a saturating utilization curve: tiny kernels cannot fill
/// the streaming multiprocessors, which is what makes over-partitioning
/// lose (paper Fig. 6).
///
/// # Example
///
/// ```
/// use lancet_cost::{ClusterSpec, ComputeModel};
/// use lancet_ir::{Op, Shape};
///
/// let m = ComputeModel::new(ClusterSpec::a100(1).device);
/// let x = Shape::new(vec![1024, 1024]);
/// let w = Shape::new(vec![1024, 1024]);
/// let y = Shape::new(vec![1024, 1024]);
/// let op = Op::MatMul { transpose_b: false };
/// let t = m.op_time(&op, &[&x, &w], &[&y]);
/// assert!(t > 0.0 && t < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ComputeModel {
    device: DeviceSpec,
}

impl ComputeModel {
    /// Builds a model for the given device.
    pub fn new(device: DeviceSpec) -> Self {
        ComputeModel { device }
    }

    /// The underlying device spec.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Effective FLOP/s for a kernel of `flops` total work.
    pub fn effective_flops(&self, flops: f64) -> f64 {
        let util = flops / (flops + self.device.util_half_flops);
        self.device.flops * util
    }

    /// Execution time (seconds) of one compute instruction.
    ///
    /// Communication ops return only their launch overhead here — their
    /// transfer time is the network's business ([`CommModel`]).
    ///
    /// [`CommModel`]: crate::CommModel
    pub fn op_time(&self, op: &Op, ins: &[&Shape], outs: &[&Shape]) -> f64 {
        if op.is_comm() {
            return self.device.launch_overhead;
        }
        let flops = op.flops(ins, outs) as f64;
        let bytes = op.mem_bytes(ins, outs) as f64;
        let t_flops = if flops > 0.0 { flops / self.effective_flops(flops) } else { 0.0 };
        let t_mem = bytes / self.device.mem_bw;
        self.device.launch_overhead + t_flops.max(t_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSpec;

    fn model() -> ComputeModel {
        ComputeModel::new(ClusterSpec::a100(1).device)
    }

    fn s(d: &[usize]) -> Shape {
        Shape::new(d.to_vec())
    }

    #[test]
    fn bigger_matmul_takes_longer() {
        let m = model();
        let op = Op::MatMul { transpose_b: false };
        let small = m.op_time(&op, &[&s(&[64, 64]), &s(&[64, 64])], &[&s(&[64, 64])]);
        let large = m.op_time(&op, &[&s(&[1024, 1024]), &s(&[1024, 1024])], &[&s(&[1024, 1024])]);
        assert!(large > small);
    }

    #[test]
    fn partitioning_halves_work_but_not_time() {
        // Sub-linear speedup from partitioning: 2 × time(half) > time(full),
        // the premise of the partition-overhead tradeoff (paper Fig. 6).
        let m = model();
        let op = Op::MatMul { transpose_b: false };
        let full = m.op_time(&op, &[&s(&[512, 512]), &s(&[512, 512])], &[&s(&[512, 512])]);
        let half = m.op_time(&op, &[&s(&[256, 512]), &s(&[512, 512])], &[&s(&[256, 512])]);
        assert!(2.0 * half > full, "2×{half} vs {full}");
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let m = model();
        let t = m.op_time(&Op::Relu, &[&s(&[1])], &[&s(&[1])]);
        assert!(t >= m.device().launch_overhead);
    }

    #[test]
    fn memory_bound_ops_follow_bandwidth() {
        let m = model();
        let big = s(&[4096, 4096]);
        let t = m.op_time(&Op::Relu, &[&big], &[&big]);
        let expected = m.device().launch_overhead + (2.0 * 4.0 * 4096.0 * 4096.0) / m.device().mem_bw;
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn utilization_saturates() {
        let m = model();
        assert!(m.effective_flops(1e6) < 0.01 * m.device().flops);
        assert!(m.effective_flops(1e12) > 0.95 * m.device().flops);
    }

    #[test]
    fn comm_ops_cost_only_launch() {
        let m = model();
        let buf = s(&[32, 320, 768]);
        assert_eq!(m.op_time(&Op::AllToAll, &[&buf], &[&buf]), m.device().launch_overhead);
    }
}
