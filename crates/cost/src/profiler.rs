//! The caching op profiler (paper §3).
//!
//! "Profiling is done once for each (partitioned) operation with the same
//! shape; the cached execution time can be subsequently reused." Our
//! measurements come from the analytical [`ComputeModel`] instead of real
//! kernel launches, but the cache structure — and the optimization-time
//! benefit it provides to the partition pass, which evaluates many
//! overlapping ranges — is the same.
//!
//! # Thread safety
//!
//! The partition pass prices candidate pipelines from a pool of worker
//! threads (see `lancet_core::partition_pass`), all sharing one profiler.
//! The cache therefore uses a read-mostly [`RwLock`]: after the first few
//! DP frontiers nearly every query is a hit, and hits take only the read
//! lock, so workers do not serialize on the cache. Hit/miss counters are
//! relaxed atomics — they feed reports, not synchronization.

use crate::ComputeModel;
use lancet_ir::{Op, Shape};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Cache statistics, for optimization-time accounting (paper Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfilerStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run a (simulated) profile.
    pub misses: u64,
}

impl ProfilerStats {
    /// Hit ratio in `[0, 1]`; 1.0 when no queries were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memoizing profiler keyed on (operator, input shapes).
///
/// # Example
///
/// ```
/// use lancet_cost::{CachingOpProfiler, ClusterSpec, ComputeModel};
/// use lancet_ir::{Op, Shape};
///
/// let profiler = CachingOpProfiler::new(ComputeModel::new(ClusterSpec::a100(1).device));
/// let x = Shape::new(vec![128, 128]);
/// let op = Op::Relu;
/// let t1 = profiler.profile(&op, &[&x]).unwrap();
/// let t2 = profiler.profile(&op, &[&x]).unwrap();
/// assert_eq!(t1, t2);
/// assert_eq!(profiler.stats().hits, 1);
/// assert_eq!(profiler.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct CachingOpProfiler {
    model: ComputeModel,
    cache: RwLock<HashMap<String, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CachingOpProfiler {
    /// Builds a profiler over the given compute model.
    pub fn new(model: ComputeModel) -> Self {
        CachingOpProfiler {
            model,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying compute model.
    pub fn model(&self) -> &ComputeModel {
        &self.model
    }

    /// Execution time of `op` on inputs of the given shapes, memoized.
    ///
    /// # Errors
    ///
    /// Propagates [`lancet_ir::IrError`] if the op rejects the shapes.
    pub fn profile(&self, op: &Op, ins: &[&Shape]) -> lancet_ir::Result<f64> {
        let key = profile_key(op, ins);
        if let Some(&t) = self.cache.read().expect("profiler cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(t);
        }
        let outs = op.infer_shapes(ins)?;
        let out_refs: Vec<&Shape> = outs.iter().collect();
        let t = self.model.op_time(op, ins, &out_refs);
        self.cache.write().expect("profiler cache poisoned").insert(key, t);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(t)
    }

    /// Current cache statistics.
    pub fn stats(&self) -> ProfilerStats {
        ProfilerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct (op, shapes) entries profiled.
    pub fn cache_size(&self) -> usize {
        self.cache.read().expect("profiler cache poisoned").len()
    }
}

fn profile_key(op: &Op, ins: &[&Shape]) -> String {
    use std::fmt::Write as _;
    let mut key = format!("{op:?}|");
    for s in ins {
        let _ = write!(key, "{s};");
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSpec;

    fn profiler() -> CachingOpProfiler {
        CachingOpProfiler::new(ComputeModel::new(ClusterSpec::v100(1).device))
    }

    #[test]
    fn caches_by_shape() {
        let p = profiler();
        let a = Shape::new(vec![64, 64]);
        let b = Shape::new(vec![128, 64]);
        let _ = p.profile(&Op::Relu, &[&a]).unwrap();
        let _ = p.profile(&Op::Relu, &[&a]).unwrap();
        let _ = p.profile(&Op::Relu, &[&b]).unwrap();
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 2);
        assert_eq!(p.cache_size(), 2);
    }

    #[test]
    fn distinguishes_op_attributes() {
        let p = profiler();
        let x = Shape::new(vec![64, 64]);
        let w = Shape::new(vec![64, 64]);
        let _ = p.profile(&Op::MatMul { transpose_b: false }, &[&x, &w]).unwrap();
        let _ = p.profile(&Op::MatMul { transpose_b: true }, &[&x, &w]).unwrap();
        assert_eq!(p.stats().misses, 2);
    }

    #[test]
    fn propagates_shape_errors() {
        let p = profiler();
        let x = Shape::new(vec![64, 32]);
        let w = Shape::new(vec![64, 64]);
        assert!(p.profile(&Op::MatMul { transpose_b: false }, &[&x, &w]).is_err());
    }

    #[test]
    fn hit_ratio_empty_is_one() {
        assert_eq!(profiler().stats().hit_ratio(), 1.0);
    }

    #[test]
    fn concurrent_queries_agree() {
        let p = profiler();
        let shape = Shape::new(vec![96, 96]);
        let times: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| p.profile(&Op::Gelu, &[&shape]).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(times.windows(2).all(|w| w[0] == w[1]));
        let stats = p.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(p.cache_size(), 1);
    }
}
