//! Hardware specifications of the simulated clusters.
//!
//! Constants follow the paper's testbeds: Amazon EC2 `p4de.24xlarge`
//! (8× A100-80GB, 4×100 Gb/s EFA per node) and `p3dn.24xlarge`
//! (8× V100-32GB, 1×100 Gb/s per node). Effective compute rates are
//! derated from peaks to typical training-kernel efficiency.

/// Compute characteristics of one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name ("A100", "V100").
    pub name: String,
    /// Sustained tensor-core FLOP/s for large GEMMs (already derated).
    pub flops: f64,
    /// Sustained HBM bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Fixed kernel-launch overhead per instruction, in seconds.
    pub launch_overhead: f64,
    /// FLOP count at which a kernel reaches 50 % of peak utilization —
    /// models streaming-multiprocessor under-utilization of small
    /// (partitioned) kernels, the effect behind paper Fig. 6.
    pub util_half_flops: f64,
    /// Device memory in bytes (for OOM detection).
    pub memory: u64,
}

/// Network characteristics of the cluster interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Per-GPU NVLink bandwidth within a node, bytes/s.
    pub intra_bw: f64,
    /// NIC bandwidth per *node*, bytes/s (shared by the node's GPUs).
    pub inter_bw_per_node: f64,
    /// Base latency per collective phase, seconds.
    pub latency: f64,
    /// Per-peer message size (bytes) at which bandwidth utilization
    /// reaches 50 % — models small-message inefficiency.
    pub util_half_bytes: f64,
}

/// Which of the paper's two testbeds a cluster models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterKind {
    /// p4de.24xlarge: 8× A100-80GB per node, 4×100 Gb/s NICs.
    A100,
    /// p3dn.24xlarge: 8× V100-32GB per node, 100 Gb/s NIC.
    V100,
}

impl ClusterKind {
    /// Display name used in figures ("A100" / "V100").
    pub fn name(self) -> &'static str {
        match self {
            ClusterKind::A100 => "A100",
            ClusterKind::V100 => "V100",
        }
    }
}

impl std::fmt::Display for ClusterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A whole simulated cluster: device type, interconnect, and node count.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Per-accelerator compute spec.
    pub device: DeviceSpec,
    /// Interconnect spec.
    pub net: NetworkSpec,
    /// Number of nodes.
    pub nodes: usize,
}

impl ClusterSpec {
    /// A `p4de.24xlarge`-like A100 cluster with `nodes` nodes.
    pub fn a100(nodes: usize) -> Self {
        ClusterSpec {
            device: DeviceSpec {
                name: "A100".into(),
                // 312 TF/s fp16 peak, derated to ~45 % for training GEMMs.
                flops: 140e12,
                mem_bw: 1.6e12,
                launch_overhead: 6e-6,
                util_half_flops: 2.0e9,
                memory: 80 * (1 << 30),
            },
            net: NetworkSpec {
                gpus_per_node: 8,
                intra_bw: 250e9,
                // 4×100 Gb/s EFA ≈ 50 GB/s per node.
                inter_bw_per_node: 50e9,
                latency: 25e-6,
                util_half_bytes: 16.0 * 1024.0,
            },
            nodes,
        }
    }

    /// A `p3dn.24xlarge`-like V100 cluster with `nodes` nodes.
    pub fn v100(nodes: usize) -> Self {
        ClusterSpec {
            device: DeviceSpec {
                name: "V100".into(),
                // 125 TF/s fp16 peak, derated to ~40 %.
                flops: 50e12,
                mem_bw: 0.9e12,
                launch_overhead: 8e-6,
                util_half_flops: 1.2e9,
                memory: 32 * (1 << 30),
            },
            net: NetworkSpec {
                gpus_per_node: 8,
                intra_bw: 130e9,
                // 1×100 Gb/s ≈ 12.5 GB/s per node.
                inter_bw_per_node: 12.5e9,
                latency: 30e-6,
                util_half_bytes: 16.0 * 1024.0,
            },
            nodes,
        }
    }

    /// Builds a cluster of the given kind.
    pub fn of(kind: ClusterKind, nodes: usize) -> Self {
        match kind {
            ClusterKind::A100 => Self::a100(nodes),
            ClusterKind::V100 => Self::v100(nodes),
        }
    }

    /// Total GPU count.
    pub fn gpus(&self) -> usize {
        self.nodes * self.net.gpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_gpu_counts() {
        assert_eq!(ClusterSpec::a100(4).gpus(), 32);
        assert_eq!(ClusterSpec::v100(1).gpus(), 8);
    }

    #[test]
    fn a100_outclasses_v100() {
        let a = ClusterSpec::a100(1);
        let v = ClusterSpec::v100(1);
        assert!(a.device.flops > v.device.flops);
        assert!(a.device.mem_bw > v.device.mem_bw);
        assert!(a.net.inter_bw_per_node > v.net.inter_bw_per_node);
        assert!(a.device.memory > v.device.memory);
    }

    #[test]
    fn of_matches_kind() {
        assert_eq!(ClusterSpec::of(ClusterKind::A100, 2), ClusterSpec::a100(2));
        assert_eq!(ClusterKind::V100.name(), "V100");
        assert_eq!(ClusterKind::A100.to_string(), "A100");
    }
}
