//! Cost modelling for the Lancet reproduction.
//!
//! The paper's system profiles operator execution times on real GPUs and
//! builds a communication cost model by measuring all-to-alls at
//! power-of-two sizes with linear interpolation in between (§3). Having no
//! GPUs, we substitute an *analytical* hardware model (documented in
//! DESIGN.md): operator latency follows a roofline with kernel-launch
//! overhead and a saturating utilization curve, and network transfers
//! follow a hierarchical (NVLink intra-node / NIC inter-node) model with
//! per-message latency and saturating bandwidth.
//!
//! Two layers matter and are kept deliberately distinct:
//!
//! * **Ground truth** ([`ComputeModel`], [`CommModel`]) — what the
//!   discrete-event simulator charges when "running" an instruction.
//! * **Compiler estimates** ([`CachingOpProfiler`], [`CommCostModel`]) —
//!   what the Lancet passes consult. The profiler caches per-(op, shape)
//!   measurements; the comm cost model interpolates between profiled
//!   points and applies the paper's static-shape `C/n` approximation for
//!   irregular all-to-alls. The gap between the two layers is exactly the
//!   cost-model error the paper measures in Fig. 14.
//!
//! A third concern sits on top of both: **expert placement**
//! ([`optimize_placement`]) searches expert→device assignments against a
//! routing histogram ([`ExpertTraffic`]) so skewed, affinity-correlated
//! workloads pay fewer inter-node bytes than the implicit uniform layout.

#![warn(missing_docs)]

mod comm;
mod compute;
mod device;
mod placement;
mod profiler;

pub use comm::{tile_payload_bytes, CommCostModel, CommModel};
pub use compute::ComputeModel;
pub use device::{ClusterKind, ClusterSpec, DeviceSpec, NetworkSpec};
pub use placement::{
    evaluate_placement, optimize_placement, ExpertTraffic, LayerProfile, PlacementCost,
    PlacementOptions, PlacementPlan, PlacementReport,
};
pub use profiler::{CachingOpProfiler, ProfilerStats};
