//! Ground-truth network model and the compiler's interpolated
//! communication cost model.

use crate::ClusterSpec;

/// Per-tile byte payloads for an all-to-all buffer of `rows` capacity
/// rows totalling `bytes`, split into `tiles` even-ish row slices
/// (earlier tiles take the remainder — the same split rule as the tile
/// scheduler's `Slice` emission and the partition codegen's chunk
/// bounds).
///
/// This is the charging unit of tile-granular overlap: each tile's
/// exchange is priced as a *full* all-to-all of its payload — including
/// the per-message latency term — which is exactly the
/// latency-multiplication vs overlap trade-off `lancet overlap-bench`
/// sweeps. `tiles` is clamped to `rows` so every tile moves at least one
/// row; `tiles = 0` is treated as 1.
pub fn tile_payload_bytes(rows: usize, bytes: u64, tiles: usize) -> Vec<u64> {
    let rows = rows.max(1);
    let tiles = tiles.clamp(1, rows);
    let base = rows / tiles;
    let rem = rows % tiles;
    let per_row = bytes as f64 / rows as f64;
    (0..tiles)
        .map(|t| {
            let len = base + usize::from(t < rem);
            (per_row * len as f64).round() as u64
        })
        .collect()
}

/// Ground-truth transfer-time model for collectives on the simulated
/// interconnect (hierarchical NVLink/NIC with saturating bandwidth).
///
/// The discrete-event simulator charges these times when executing
/// communication instructions.
#[derive(Debug, Clone)]
pub struct CommModel {
    spec: ClusterSpec,
}

impl CommModel {
    /// Builds the model for a cluster.
    pub fn new(spec: ClusterSpec) -> Self {
        CommModel { spec }
    }

    /// The underlying cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Bandwidth-utilization factor for per-peer messages of `bytes`.
    ///
    /// Saturating curve with a floor: tiny messages are latency-bound
    /// (the `latency` term dominates), not infinitely slow.
    fn msg_util(&self, bytes: f64) -> f64 {
        (bytes / (bytes + self.spec.net.util_half_bytes)).max(0.15)
    }

    /// Time for an all-to-all where each device contributes `bytes` of
    /// send buffer, across `gpus` devices.
    ///
    /// Each device keeps `1/G` locally, moves `(gpn−1)/G` over NVLink and
    /// the rest over the node NIC (shared by the node's GPUs). The slower
    /// of the two paths dominates; per-peer message size determines the
    /// bandwidth utilization.
    pub fn all_to_all_time(&self, bytes: u64, gpus: usize) -> f64 {
        if gpus <= 1 || bytes == 0 {
            return self.spec.net.latency;
        }
        let g = gpus as f64;
        let gpn = self.spec.net.gpus_per_node.min(gpus) as f64;
        let b = bytes as f64;
        let per_peer = b / g;
        let util = self.msg_util(per_peer);

        let intra_bytes = b * (gpn - 1.0) / g;
        let t_intra = intra_bytes / (self.spec.net.intra_bw * util);
        // Bytes leaving the node, for all gpn GPUs sharing the NIC.
        let inter_frac = (g - gpn) / g;
        let t_inter = if inter_frac > 0.0 {
            let node_bytes = b * inter_frac * gpn;
            node_bytes / (self.spec.net.inter_bw_per_node * util)
        } else {
            0.0
        };
        self.spec.net.latency + t_intra.max(t_inter)
    }

    /// Time for an all-to-all under a *non-uniform* expert placement:
    /// `inter_frac` of the moved bytes cross node boundaries (instead of
    /// the topology constant `(G−gpn)/G`) and the busiest receiver holds
    /// `load_factor` ≥ 1 times the balanced share, stretching both paths.
    ///
    /// With `inter_frac = (G−gpn)/G` and `load_factor = 1` this is
    /// exactly [`CommModel::all_to_all_time`] — the uniform model is the
    /// special case, so placement-aware simulation degrades to the stock
    /// charge when no plan is installed. See `PlacementPlan::layer_profiles`
    /// for where the two factors come from.
    pub fn all_to_all_time_skewed(
        &self,
        bytes: u64,
        gpus: usize,
        inter_frac: f64,
        load_factor: f64,
    ) -> f64 {
        if gpus <= 1 || bytes == 0 {
            return self.spec.net.latency;
        }
        let g = gpus as f64;
        let gpn = self.spec.net.gpus_per_node.min(gpus) as f64;
        let b = bytes as f64;
        let util = self.msg_util(b / g);
        let load = load_factor.max(1.0);
        // 1/G stays local; the moved remainder splits between NVLink and
        // the NIC according to the placement-derived fraction.
        let inter_frac = inter_frac.clamp(0.0, (g - 1.0) / g);
        let intra_frac = (g - 1.0) / g - inter_frac;
        let t_intra = b * intra_frac * load / (self.spec.net.intra_bw * util);
        let t_inter = if inter_frac > 0.0 {
            b * inter_frac * gpn * load / (self.spec.net.inter_bw_per_node * util)
        } else {
            0.0
        };
        self.spec.net.latency + t_intra.max(t_inter)
    }

    /// Time for the two-phase irregular all-to-all: a (tiny) size exchange
    /// plus the payload exchange of `actual_bytes`.
    pub fn irregular_all_to_all_time(&self, actual_bytes: u64, experts: usize, gpus: usize) -> f64 {
        let size_exchange = self.all_to_all_time((4 * experts) as u64, gpus);
        size_exchange + self.all_to_all_time(actual_bytes, gpus)
    }

    /// Time for a hierarchical (two-stage) all-to-all: an intra-node
    /// exchange over NVLink re-buckets data by destination rank, then
    /// same-rank devices exchange node-aggregated buckets across nodes.
    /// Inter-node messages are `gpus_per_node`× larger than the naive
    /// scheme's, so bandwidth utilization is far better for small
    /// transfers (paper §8: better communication implementations).
    pub fn hierarchical_all_to_all_time(&self, bytes: u64, gpus: usize) -> f64 {
        let gpn = self.spec.net.gpus_per_node.min(gpus).max(1);
        let nodes = gpus.div_ceil(gpn);
        if gpus <= 1 || bytes == 0 {
            return self.spec.net.latency;
        }
        if nodes <= 1 {
            return self.all_to_all_time(bytes, gpus);
        }
        let b = bytes as f64;
        // Stage 1: intra-node all-to-all; per-peer chunks of bytes/gpn.
        let intra_moved = b * (gpn as f64 - 1.0) / gpn as f64;
        let t_intra = intra_moved / (self.spec.net.intra_bw * self.msg_util(b / gpn as f64));
        // Stage 2: same-rank inter-node exchange; per-peer messages of
        // bytes/nodes, all gpn ranks sharing the NIC.
        let inter_moved_node = b * (nodes as f64 - 1.0) / nodes as f64 * gpn as f64;
        let t_inter =
            inter_moved_node / (self.spec.net.inter_bw_per_node * self.msg_util(b / nodes as f64));
        2.0 * self.spec.net.latency + t_intra + t_inter
    }

    /// Time for a ring all-gather materializing a tensor of `full_bytes`
    /// from per-device shards across `gpus` devices (each device receives
    /// `(G−1)/G` of the full tensor).
    pub fn all_gather_time(&self, full_bytes: u64, gpus: usize) -> f64 {
        if gpus <= 1 || full_bytes == 0 {
            return self.spec.net.latency;
        }
        let g = gpus as f64;
        let moved = full_bytes as f64 * (g - 1.0) / g;
        let gpn = self.spec.net.gpus_per_node.min(gpus) as f64;
        let bottleneck_bw = if (gpus as f64) > gpn {
            self.spec.net.inter_bw_per_node / gpn
        } else {
            self.spec.net.intra_bw
        };
        let util = self.msg_util(full_bytes as f64 / g);
        self.spec.net.latency + moved / (bottleneck_bw * util)
    }

    /// Time for a ring reduce-scatter of a tensor of `full_bytes` across
    /// `gpus` devices (same traffic pattern as the all-gather).
    pub fn reduce_scatter_time(&self, full_bytes: u64, gpus: usize) -> f64 {
        self.all_gather_time(full_bytes, gpus)
    }

    /// Time for a ring all-reduce of `bytes` across `gpus` devices.
    pub fn all_reduce_time(&self, bytes: u64, gpus: usize) -> f64 {
        if gpus <= 1 || bytes == 0 {
            return self.spec.net.latency;
        }
        let g = gpus as f64;
        let b = bytes as f64;
        let moved = 2.0 * b * (g - 1.0) / g;
        // The ring bottleneck is the slowest link a chunk crosses.
        let gpn = self.spec.net.gpus_per_node.min(gpus) as f64;
        let bottleneck_bw = if (gpus as f64) > gpn {
            self.spec.net.inter_bw_per_node / gpn
        } else {
            self.spec.net.intra_bw
        };
        let util = self.msg_util(b / g);
        self.spec.net.latency * 2.0 + moved / (bottleneck_bw * util)
    }
}

/// The compiler's communication cost model (paper §3): built by profiling
/// all-to-all times at power-of-two sizes and linearly interpolating.
///
/// For irregular all-to-alls whose true size is unknown at compile time,
/// the paper's static-shape approximation queries the *uniform* cost at
/// capacity `C/n`; see [`CommCostModel::query`] — callers pass the padded
/// (capacity-shaped) byte count.
///
/// # Example
///
/// ```
/// use lancet_cost::{ClusterSpec, CommCostModel, CommModel};
///
/// let spec = ClusterSpec::v100(2);
/// let truth = CommModel::new(spec.clone());
/// let model = CommCostModel::build(&truth, 1 << 26, spec.gpus());
/// let predicted = model.query(3_000_000);
/// let actual = truth.all_to_all_time(3_000_000, spec.gpus());
/// assert!((predicted - actual).abs() / actual < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct CommCostModel {
    /// Profiled (bytes, seconds) points, ascending in bytes.
    points: Vec<(u64, f64)>,
    gpus: usize,
}

impl CommCostModel {
    /// Profiles the ground-truth model from 1 KiB up to `max_bytes`
    /// (paper: "1KB, 2KB, 4KB, …, up to the maximum possible
    /// communication used in models").
    pub fn build(truth: &CommModel, max_bytes: u64, gpus: usize) -> Self {
        let mut points = Vec::new();
        let mut size = 1024u64;
        points.push((0, truth.spec.net.latency));
        while size < max_bytes.max(1024) {
            points.push((size, truth.all_to_all_time(size, gpus)));
            size *= 2;
        }
        points.push((size, truth.all_to_all_time(size, gpus)));
        CommCostModel { points, gpus }
    }

    /// Number of profiled points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Device count the model was profiled for.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Predicted all-to-all time for a per-device buffer of `bytes`,
    /// linearly interpolated between profiled points (extrapolated from
    /// the last segment beyond the profiled range).
    pub fn query(&self, bytes: u64) -> f64 {
        let pts = &self.points;
        if bytes >= pts[pts.len() - 1].0 {
            // Extrapolate using the slope of the final segment.
            let (x0, y0) = pts[pts.len() - 2];
            let (x1, y1) = pts[pts.len() - 1];
            let slope = (y1 - y0) / (x1 - x0) as f64;
            return y1 + slope * (bytes - x1) as f64;
        }
        let idx = pts.partition_point(|&(x, _)| x <= bytes);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        let frac = (bytes - x0) as f64 / (x1 - x0) as f64;
        y0 + frac * (y1 - y0)
    }

    /// The paper's static-shape approximation for an `n`-way partitioned
    /// all-to-all of original padded size `padded_bytes`: query the
    /// uniform model at `padded_bytes / n`.
    pub fn query_partitioned(&self, padded_bytes: u64, parts: usize) -> f64 {
        self.query(padded_bytes / parts.max(1) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100_model(nodes: usize) -> CommModel {
        CommModel::new(ClusterSpec::v100(nodes))
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let m = v100_model(2);
        let t1 = m.all_to_all_time(1 << 20, 16);
        let t2 = m.all_to_all_time(1 << 24, 16);
        assert!(t2 > t1);
    }

    #[test]
    fn multi_node_slower_than_single_node() {
        let m2 = v100_model(2);
        let m1 = v100_model(1);
        let bytes = 32 << 20;
        assert!(m2.all_to_all_time(bytes, 16) > m1.all_to_all_time(bytes, 8));
    }

    #[test]
    fn single_gpu_alltoall_is_latency_only() {
        let m = v100_model(1);
        assert_eq!(m.all_to_all_time(1 << 20, 1), m.spec().net.latency);
    }

    #[test]
    fn skewed_alltoall_uniform_case_matches_stock() {
        let m = v100_model(2);
        for bytes in [1u64 << 16, 1 << 20, 1 << 24] {
            let g = 16.0;
            let gpn = 8.0;
            let uniform = m.all_to_all_time(bytes, 16);
            let skewed = m.all_to_all_time_skewed(bytes, 16, (g - gpn) / g, 1.0);
            assert!((uniform - skewed).abs() < 1e-12, "{bytes}: {uniform} vs {skewed}");
        }
    }

    #[test]
    fn skewed_alltoall_penalizes_overload_and_crossing() {
        let m = v100_model(2);
        let base = m.all_to_all_time_skewed(1 << 22, 16, 0.5, 1.0);
        assert!(m.all_to_all_time_skewed(1 << 22, 16, 0.5, 2.0) > base);
        assert!(m.all_to_all_time_skewed(1 << 22, 16, 0.8, 1.0) > base);
        // Fully node-local traffic beats the uniform fraction.
        assert!(m.all_to_all_time_skewed(1 << 22, 16, 0.0, 1.0) < base);
    }

    #[test]
    fn irregular_adds_size_exchange() {
        let m = v100_model(2);
        let uniform = m.all_to_all_time(1 << 20, 16);
        let irr = m.irregular_all_to_all_time(1 << 20, 32, 16);
        assert!(irr > uniform);
        // But with fewer actual bytes, the irregular one wins.
        let irr_small = m.irregular_all_to_all_time(1 << 18, 32, 16);
        assert!(irr_small < uniform);
    }

    #[test]
    fn allreduce_scales_with_bytes() {
        let m = v100_model(2);
        assert!(m.all_reduce_time(1 << 24, 16) > m.all_reduce_time(1 << 20, 16));
        assert_eq!(m.all_reduce_time(0, 16), m.spec().net.latency);
    }

    #[test]
    fn cost_model_interpolates_accurately() {
        let spec = ClusterSpec::v100(2);
        let truth = CommModel::new(spec.clone());
        let model = CommCostModel::build(&truth, 1 << 26, 16);
        for bytes in [1500u64, 100_000, 3_000_000, 40_000_000] {
            let predicted = model.query(bytes);
            let actual = truth.all_to_all_time(bytes, 16);
            let err = (predicted - actual).abs() / actual;
            assert!(err < 0.08, "{bytes} bytes: err {err}");
        }
    }

    #[test]
    fn cost_model_extrapolates_beyond_range() {
        let spec = ClusterSpec::v100(2);
        let truth = CommModel::new(spec.clone());
        let model = CommCostModel::build(&truth, 1 << 20, 16);
        let far = model.query(1 << 24);
        assert!(far > model.query(1 << 20));
    }

    #[test]
    fn partitioned_query_divides_size() {
        let spec = ClusterSpec::v100(2);
        let truth = CommModel::new(spec.clone());
        let model = CommCostModel::build(&truth, 1 << 26, 16);
        let full = model.query(1 << 24);
        let quarter = model.query_partitioned(1 << 24, 4);
        assert!(quarter < full);
        assert!((quarter - model.query((1 << 24) / 4)).abs() < 1e-12);
    }

    #[test]
    fn tile_payloads_cover_buffer_exactly() {
        // 10 rows, 4 tiles → row splits 3/3/2/2; byte totals preserved.
        let parts = tile_payload_bytes(10, 4000, 4);
        assert_eq!(parts, vec![1200, 1200, 800, 800]);
        assert_eq!(parts.iter().sum::<u64>(), 4000);
        // Clamps: more tiles than rows, zero tiles.
        assert_eq!(tile_payload_bytes(2, 100, 8).len(), 2);
        assert_eq!(tile_payload_bytes(5, 100, 0), vec![100]);
        // Degenerate single tile is the whole buffer.
        assert_eq!(tile_payload_bytes(7, 123, 1), vec![123]);
    }

    #[test]
    fn tiling_multiplies_latency_but_splits_payload() {
        // The trade-off the overlap ablation sweeps: per-tile exchanges
        // each pay the latency term, so total comm time grows with the
        // tile count even though the payload is conserved.
        let model = CommModel::new(ClusterSpec::v100(2));
        let whole = model.all_to_all_time(1 << 24, 16);
        for tiles in [2usize, 4, 8] {
            let total: f64 = tile_payload_bytes(512, 1 << 24, tiles)
                .iter()
                .map(|&b| model.all_to_all_time(b, 16))
                .sum();
            assert!(total > whole, "tiles={tiles}: {total} !> {whole}");
            let per_tile = tile_payload_bytes(512, 1 << 24, tiles)[0];
            assert!(model.all_to_all_time(per_tile, 16) < whole, "tiles={tiles}");
        }
    }

    #[test]
    fn monotone_in_bytes() {
        let spec = ClusterSpec::a100(4);
        let truth = CommModel::new(spec.clone());
        let model = CommCostModel::build(&truth, 1 << 28, 32);
        let mut prev = 0.0;
        for p in 10..28 {
            let t = model.query(1u64 << p);
            assert!(t >= prev, "non-monotone at 2^{p}");
            prev = t;
        }
    }
}
