//! Expert-placement optimization (MoETuner-style, arXiv:2502.06643).
//!
//! The Lancet passes assume a *uniform* expert placement: expert `e` of
//! every MoE layer lives on device `e·G/E`, so each device's share of an
//! all-to-all is identical and the fraction of bytes crossing node
//! boundaries is the topology constant `(G−gpn)/G`. Real routing is
//! neither balanced nor layer-independent: token→expert distributions are
//! heavy-tailed (Zipf), and a token routed to expert `i` at layer `l` has
//! a strong prior to pick a *correlated* expert `j` at layer `l+1`
//! (inter-layer affinity, arXiv:2401.08383). This module searches
//! expert→device assignments that exploit both effects:
//!
//! * **Load balance** — spreading hot experts across devices lowers the
//!   busiest receiver's share, which bounds when the all-to-all finishes.
//! * **Affinity locality** — co-locating high-transition expert pairs of
//!   adjacent layers on the same *node* turns inter-node dispatch bytes
//!   into NVLink bytes.
//!
//! The data flow is: a routing histogram ([`ExpertTraffic`], collected by
//! `lancet-moe` from real [`Routing`]s or generated synthetically) feeds
//! [`optimize_placement`], which returns a [`PlacementPlan`] plus a
//! before/after [`PlacementReport`]. Consumers: `Lancet::optimize`
//! threads the plan next to its partition report, the simulator replays
//! schedules under the plan (`SimConfig::with_placement`), and the serve
//! runtime dispatches batches toward the worker holding their hot expert.
//!
//! # Determinism contract
//!
//! Like `FaultPlan`, every stochastic decision is a pure function of the
//! caller-provided seed: [`ExpertTraffic::synthetic`] derives each draw
//! from `(seed, token, layer)` via SplitMix64, and the search itself is
//! seed-free (deterministic sweep order, strict-improvement acceptance).
//! Same traffic + same device count ⇒ bit-identical [`PlacementPlan`].
//!
//! [`Routing`]: https://docs.rs/lancet-moe

/// Per-layer, per-expert routing histogram: the optimizer's only input.
///
/// Two count families are recorded:
///
/// * `load(layer, expert)` — kept token-slots routed to an expert, which
///   determines per-device receive load under a placement.
/// * `transition(layer, from, to)` — tokens routed to expert `from` at
///   `layer` *and* to expert `to` at `layer + 1`. This is the affinity
///   signal: a transition whose endpoints land on different nodes pays
///   inter-node bandwidth for the token's dispatch into `layer + 1`.
///
/// Counts are plain `u64`s so a histogram built twice from the same
/// routings (or the same [`ExpertTraffic::synthetic`] seed) is
/// bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpertTraffic {
    layers: usize,
    experts: usize,
    /// Payload bytes carried per routed token (hidden size × dtype width).
    bytes_per_token: u64,
    /// `layers · experts`, layer-major.
    loads: Vec<u64>,
    /// `(layers−1) · experts · experts`, `[layer][from][to]`.
    transitions: Vec<u64>,
}

impl ExpertTraffic {
    /// An empty histogram for `layers` MoE layers of `experts` experts
    /// each, with `bytes_per_token` payload bytes per routed token.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `experts == 0`.
    pub fn new(layers: usize, experts: usize, bytes_per_token: u64) -> Self {
        assert!(layers > 0 && experts > 0, "need at least one layer and expert");
        ExpertTraffic {
            layers,
            experts,
            bytes_per_token,
            loads: vec![0; layers * experts],
            transitions: vec![0; (layers - 1) * experts * experts],
        }
    }

    /// Number of MoE layers covered.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Experts per layer.
    pub fn experts(&self) -> usize {
        self.experts
    }

    /// Payload bytes per routed token.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Adds `tokens` routed token-slots for `expert` at `layer`.
    pub fn record_load(&mut self, layer: usize, expert: usize, tokens: u64) {
        self.loads[layer * self.experts + expert] += tokens;
    }

    /// Adds `tokens` transitioning from expert `from` at `layer` to
    /// expert `to` at `layer + 1` (requires `layer < layers() − 1`).
    pub fn record_transition(&mut self, layer: usize, from: usize, to: usize, tokens: u64) {
        let e = self.experts;
        self.transitions[layer * e * e + from * e + to] += tokens;
    }

    /// Kept token-slots routed to `expert` at `layer`.
    pub fn load(&self, layer: usize, expert: usize) -> u64 {
        self.loads[layer * self.experts + expert]
    }

    /// Tokens moving from expert `from` at `layer` to expert `to` at
    /// `layer + 1`.
    pub fn transition(&self, layer: usize, from: usize, to: usize) -> u64 {
        let e = self.experts;
        self.transitions[layer * e * e + from * e + to]
    }

    /// Total routed token-slots at `layer`.
    pub fn layer_total(&self, layer: usize) -> u64 {
        let e = self.experts;
        self.loads[layer * e..(layer + 1) * e].iter().sum()
    }

    /// Ratio of the busiest expert's load at `layer` to the balanced
    /// share (1.0 = perfectly balanced; ≥ 1 always).
    pub fn imbalance(&self, layer: usize) -> f64 {
        let total = self.layer_total(layer);
        if total == 0 {
            return 1.0;
        }
        let max = (0..self.experts).map(|e| self.load(layer, e)).max().unwrap_or(0);
        max as f64 * self.experts as f64 / total as f64
    }

    /// Generates a seeded synthetic histogram with Zipf-skewed expert
    /// popularity and inter-layer affinity, mirroring the drift model of
    /// the affinity literature: each token draws its layer-0 expert from
    /// a Zipf law with the given `zipf_exponent`, then at every
    /// subsequent layer *keeps* its expert with probability `affinity`
    /// and redraws otherwise.
    ///
    /// Deterministic: every draw is a pure function of
    /// `(seed, token, layer)` — same arguments, bit-identical histogram
    /// (the `FaultPlan` contract).
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`, `experts == 0` or `tokens == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use lancet_cost::ExpertTraffic;
    ///
    /// let a = ExpertTraffic::synthetic(4, 8, 512, 1.2, 0.8, 4096, 7);
    /// let b = ExpertTraffic::synthetic(4, 8, 512, 1.2, 0.8, 4096, 7);
    /// assert_eq!(a, b);
    /// assert!(a.imbalance(0) > 1.5); // Zipf skew overloads the head expert
    /// ```
    #[allow(clippy::too_many_arguments)]
    pub fn synthetic(
        layers: usize,
        experts: usize,
        tokens: usize,
        zipf_exponent: f64,
        affinity: f64,
        bytes_per_token: u64,
        seed: u64,
    ) -> Self {
        assert!(tokens > 0, "need at least one token");
        let mut traffic = ExpertTraffic::new(layers, experts, bytes_per_token);
        // Cumulative Zipf weights for inverse-CDF sampling.
        let weights: Vec<f64> = (1..=experts).map(|r| 1.0 / (r as f64).powf(zipf_exponent)).collect();
        let total: f64 = weights.iter().sum();
        let zipf_draw = |u: f64| -> usize {
            let mut acc = 0.0;
            for (i, w) in weights.iter().enumerate() {
                acc += w / total;
                if u < acc {
                    return i;
                }
            }
            experts - 1
        };
        let affinity = affinity.clamp(0.0, 1.0);
        for t in 0..tokens {
            let mut expert = zipf_draw(unit(seed, t as u64, 0));
            traffic.record_load(0, expert, 1);
            for l in 1..layers {
                let keep = unit(seed, t as u64, (2 * l) as u64) < affinity;
                let next =
                    if keep { expert } else { zipf_draw(unit(seed, t as u64, (2 * l + 1) as u64)) };
                traffic.record_load(l, next, 1);
                traffic.record_transition(l - 1, expert, next, 1);
                expert = next;
            }
        }
        traffic
    }
}

/// SplitMix64 finalizer (same mixer the fault plan uses).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, a, b)` — pure and stateless.
fn unit(seed: u64, a: u64, b: u64) -> f64 {
    let h = splitmix(splitmix(splitmix(seed) ^ a) ^ b.rotate_left(32));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// An expert→device assignment for every MoE layer.
///
/// `Eq` on purpose: the determinism contract is *bit-identical plans* for
/// identical inputs, and tests compare whole plans.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlacementPlan {
    layers: usize,
    experts: usize,
    devices: usize,
    /// `layers · experts`, layer-major; `assign[l·E + e]` is the device
    /// hosting expert `e` of layer `l`.
    assign: Vec<u32>,
}

impl PlacementPlan {
    /// The uniform (implicit, pre-placement) assignment: expert `e` of
    /// every layer lives on device `e·D/E` — contiguous equal-size
    /// blocks, identical across layers.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn uniform(layers: usize, experts: usize, devices: usize) -> Self {
        assert!(layers > 0 && experts > 0 && devices > 0, "need nonzero dimensions");
        let assign = (0..layers * experts)
            .map(|i| ((i % experts) * devices / experts) as u32)
            .collect();
        PlacementPlan { layers, experts, devices, assign }
    }

    /// Number of MoE layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Experts per layer.
    pub fn experts(&self) -> usize {
        self.experts
    }

    /// Devices the experts are spread over.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Device hosting `expert` of `layer`.
    pub fn device_of(&self, layer: usize, expert: usize) -> usize {
        self.assign[layer * self.experts + expert] as usize
    }

    /// Per-layer `(inter_frac, load_factor)` profile under `traffic`:
    /// the fraction of the layer's dispatch bytes that cross node
    /// boundaries, and the busiest device's receive load relative to the
    /// balanced share (≥ 1). Layer 0 ingress comes uniformly from token
    /// home devices, so its inter-node fraction is the topology constant
    /// `(D − gpn)/D`; later layers use recorded inter-layer transitions
    /// (the fused gather→dispatch path of the affinity model).
    ///
    /// The simulator charges all-to-alls with these two factors; a
    /// uniform plan over balanced traffic reproduces the stock
    /// `CommModel::all_to_all_time` exactly.
    pub fn layer_profiles(&self, traffic: &ExpertTraffic, gpus_per_node: usize) -> Vec<LayerProfile> {
        assert_eq!(traffic.layers(), self.layers, "traffic/plan layer mismatch");
        assert_eq!(traffic.experts(), self.experts, "traffic/plan expert mismatch");
        let gpn = gpus_per_node.clamp(1, self.devices);
        let node_of = |dev: usize| dev / gpn;
        let uniform_inter = (self.devices - gpn.min(self.devices)) as f64 / self.devices as f64;
        let mut out = Vec::with_capacity(self.layers);
        for l in 0..self.layers {
            // Busiest receiver's load vs the balanced share.
            let mut dev_load = vec![0u64; self.devices];
            for e in 0..self.experts {
                dev_load[self.device_of(l, e)] += traffic.load(l, e);
            }
            let total = traffic.layer_total(l);
            let load_factor = if total == 0 {
                1.0
            } else {
                let max = *dev_load.iter().max().unwrap_or(&0);
                (max as f64 * self.devices as f64 / total as f64).max(1.0)
            };
            // Inter-node byte fraction of the layer's dispatch.
            let inter_frac = if l == 0 || total == 0 {
                uniform_inter
            } else {
                let mut cross = 0u64;
                let mut moved = 0u64;
                for i in 0..self.experts {
                    let src = node_of(self.device_of(l - 1, i));
                    for j in 0..self.experts {
                        let t = traffic.transition(l - 1, i, j);
                        if t == 0 {
                            continue;
                        }
                        moved += t;
                        if node_of(self.device_of(l, j)) != src {
                            cross += t;
                        }
                    }
                }
                if moved == 0 { uniform_inter } else { cross as f64 / moved as f64 }
            };
            out.push(LayerProfile { inter_frac, load_factor });
        }
        out
    }
}

/// Per-layer all-to-all skew profile derived from a placement + traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerProfile {
    /// Fraction of the layer's dispatch bytes crossing node boundaries
    /// (`(D − gpn)/D` for uniform placement over uncorrelated routing).
    pub inter_frac: f64,
    /// Busiest device's receive load over the balanced share, ≥ 1.
    pub load_factor: f64,
}

/// Knobs for the placement search.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementOptions {
    /// Weight of the load-balance penalty relative to inter-node bytes
    /// (both terms are measured in bytes; 1.0 treats a byte of overload
    /// on the busiest device like a byte crossing the network).
    pub balance_weight: f64,
    /// Maximum full sweeps of the pairwise-swap local search; the search
    /// stops early once a sweep accepts no swap.
    pub sweeps: usize,
}

impl Default for PlacementOptions {
    fn default() -> Self {
        PlacementOptions { balance_weight: 1.0, sweeps: 8 }
    }
}

/// Cost of one placement under one traffic histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementCost {
    /// Dispatch bytes crossing node boundaries over one step (layer-0
    /// ingress plus every inter-layer transition whose endpoints live on
    /// different nodes).
    pub inter_node_bytes: u64,
    /// Worst per-layer load factor (busiest device over balanced share).
    pub load_factor: f64,
    /// Scalar search objective: inter-node bytes plus the weighted
    /// per-layer overload bytes.
    pub objective: f64,
}

/// Before/after summary returned by [`optimize_placement`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementReport {
    /// Cost of the uniform baseline placement.
    pub uniform: PlacementCost,
    /// Cost of the optimized placement.
    pub optimized: PlacementCost,
    /// Accepted swaps.
    pub moves: usize,
    /// Candidate placements priced during the search.
    pub evaluations: usize,
}

/// Prices `plan` against `traffic` on a `gpus_per_node`-wide node
/// topology (see [`PlacementCost`]).
pub fn evaluate_placement(
    plan: &PlacementPlan,
    traffic: &ExpertTraffic,
    gpus_per_node: usize,
    balance_weight: f64,
) -> PlacementCost {
    let gpn = gpus_per_node.clamp(1, plan.devices());
    let node_of = |dev: usize| dev / gpn;
    let bpt = traffic.bytes_per_token() as f64;
    let nodes = plan.devices().div_ceil(gpn);

    let mut inter = 0.0f64;
    let mut overload = 0.0f64;
    let mut worst_factor = 1.0f64;
    for l in 0..plan.layers() {
        let total = traffic.layer_total(l);
        if total == 0 {
            continue;
        }
        // Busiest receiver.
        let mut dev_load = vec![0u64; plan.devices()];
        for e in 0..plan.experts() {
            dev_load[plan.device_of(l, e)] += traffic.load(l, e);
        }
        let max = *dev_load.iter().max().unwrap_or(&0) as f64;
        let factor = (max * plan.devices() as f64 / total as f64).max(1.0);
        worst_factor = worst_factor.max(factor);
        overload += (max - total as f64 / plan.devices() as f64).max(0.0) * bpt;
        if l == 0 {
            // Ingress from uniformly-spread token homes: placement cannot
            // change this term, but it keeps byte counts comparable to
            // the simulator's charges.
            inter += total as f64 * bpt * (nodes.saturating_sub(1)) as f64 / nodes as f64;
        } else {
            for i in 0..plan.experts() {
                let src = node_of(plan.device_of(l - 1, i));
                for j in 0..plan.experts() {
                    let t = traffic.transition(l - 1, i, j);
                    if t != 0 && node_of(plan.device_of(l, j)) != src {
                        inter += t as f64 * bpt;
                    }
                }
            }
        }
    }
    PlacementCost {
        inter_node_bytes: inter.round() as u64,
        load_factor: worst_factor,
        objective: inter + balance_weight * overload,
    }
}

/// Searches an expert→device assignment minimizing inter-node dispatch
/// bytes plus weighted load overload, starting from the uniform plan.
///
/// The search is swap-only — it exchanges the device assignments of two
/// experts within one layer — so every device keeps exactly its uniform
/// expert count (the memory-capacity constraint: an expert's parameters
/// live where it is placed). Sweeps run in deterministic order (layers
/// ascending, expert pairs lexicographic) and accept strictly-improving
/// swaps, so the result is reproducible without any seed.
///
/// Returns the optimized plan and a before/after [`PlacementReport`].
///
/// # Example
///
/// ```
/// use lancet_cost::{optimize_placement, ExpertTraffic, PlacementOptions};
///
/// let traffic = ExpertTraffic::synthetic(4, 16, 2048, 1.2, 0.8, 4096, 7);
/// let (plan, report) = optimize_placement(&traffic, 8, 4, &PlacementOptions::default());
/// assert_eq!(plan.devices(), 8);
/// assert!(report.optimized.objective <= report.uniform.objective);
/// ```
pub fn optimize_placement(
    traffic: &ExpertTraffic,
    devices: usize,
    gpus_per_node: usize,
    opts: &PlacementOptions,
) -> (PlacementPlan, PlacementReport) {
    let mut plan = PlacementPlan::uniform(traffic.layers(), traffic.experts(), devices);
    let uniform = evaluate_placement(&plan, traffic, gpus_per_node, opts.balance_weight);
    let mut best = uniform;
    let mut moves = 0usize;
    let mut evaluations = 1usize;

    for _ in 0..opts.sweeps {
        let mut improved = false;
        for l in 0..plan.layers() {
            for i in 0..plan.experts() {
                for j in (i + 1)..plan.experts() {
                    let (di, dj) = (plan.assign[l * plan.experts + i], plan.assign[l * plan.experts + j]);
                    if di == dj {
                        continue;
                    }
                    plan.assign[l * plan.experts + i] = dj;
                    plan.assign[l * plan.experts + j] = di;
                    let cost = evaluate_placement(&plan, traffic, gpus_per_node, opts.balance_weight);
                    evaluations += 1;
                    if cost.objective < best.objective - 1e-9 {
                        best = cost;
                        moves += 1;
                        improved = true;
                    } else {
                        plan.assign[l * plan.experts + i] = di;
                        plan.assign[l * plan.experts + j] = dj;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    (plan, PlacementReport { uniform, optimized: best, moves, evaluations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(layers: usize, experts: usize) -> ExpertTraffic {
        ExpertTraffic::synthetic(layers, experts, 2048, 1.2, 0.8, 4096, 0x91ACE)
    }

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(skewed(4, 16), skewed(4, 16));
        let other = ExpertTraffic::synthetic(4, 16, 2048, 1.2, 0.8, 4096, 1);
        assert_ne!(skewed(4, 16), other);
    }

    #[test]
    fn synthetic_affinity_concentrates_transitions() {
        let sticky = ExpertTraffic::synthetic(2, 8, 4096, 0.0, 1.0, 1, 3);
        // affinity = 1.0 ⇒ every transition stays on the diagonal.
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert_eq!(sticky.transition(0, i, j), 0);
                }
            }
        }
        assert_eq!(sticky.layer_total(0), 4096);
        assert_eq!(sticky.layer_total(1), 4096);
    }

    #[test]
    fn uniform_plan_blocks_experts_contiguously() {
        let p = PlacementPlan::uniform(2, 8, 4);
        for l in 0..2 {
            assert_eq!(
                (0..8).map(|e| p.device_of(l, e)).collect::<Vec<_>>(),
                vec![0, 0, 1, 1, 2, 2, 3, 3]
            );
        }
    }

    #[test]
    fn optimize_beats_uniform_on_skewed_traffic() {
        let traffic = skewed(4, 16);
        let (plan, report) = optimize_placement(&traffic, 8, 4, &PlacementOptions::default());
        assert!(report.optimized.objective < report.uniform.objective);
        assert!(report.optimized.inter_node_bytes <= report.uniform.inter_node_bytes);
        assert!(report.optimized.load_factor <= report.uniform.load_factor + 1e-9);
        assert!(report.moves > 0);
        // The swap-only search preserves per-device expert counts.
        for l in 0..plan.layers() {
            let mut counts = vec![0usize; plan.devices()];
            for e in 0..plan.experts() {
                counts[plan.device_of(l, e)] += 1;
            }
            assert!(counts.iter().all(|&c| c == 16 / 8), "layer {l}: {counts:?}");
        }
    }

    #[test]
    fn search_is_deterministic() {
        let traffic = skewed(3, 8);
        let opts = PlacementOptions::default();
        let (a, ra) = optimize_placement(&traffic, 4, 2, &opts);
        let (b, rb) = optimize_placement(&traffic, 4, 2, &opts);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn uniform_profiles_match_topology_constant() {
        // Balanced traffic + uniform plan ⇒ inter_frac = (D−gpn)/D and
        // load_factor = 1 everywhere.
        let mut t = ExpertTraffic::new(2, 8, 1024);
        for l in 0..2 {
            for e in 0..8 {
                t.record_load(l, e, 100);
            }
        }
        // Uncorrelated uniform transitions.
        for i in 0..8 {
            for j in 0..8 {
                t.record_transition(0, i, j, 10);
            }
        }
        let p = PlacementPlan::uniform(2, 8, 8);
        let profiles = p.layer_profiles(&t, 4);
        for lp in &profiles {
            assert!((lp.inter_frac - 0.5).abs() < 1e-9, "{lp:?}");
            assert!((lp.load_factor - 1.0).abs() < 1e-9, "{lp:?}");
        }
    }

    #[test]
    fn affinity_placement_lowers_inter_frac() {
        // Perfect diagonal affinity: the optimizer can keep every
        // transition on-node, the uniform plan already does (expert i at
        // both layers sits on the same device) — but a rotated traffic
        // pattern cannot be local under uniform placement.
        let mut t = ExpertTraffic::new(2, 8, 1024);
        for l in 0..2 {
            for e in 0..8 {
                t.record_load(l, e, 100);
            }
        }
        // Expert i feeds expert (i+4)%8: uniform placement (gpn=2,
        // 4 nodes) sends every transition across nodes.
        for i in 0..8 {
            t.record_transition(0, i, (i + 4) % 8, 100);
        }
        let (plan, report) = optimize_placement(&t, 8, 2, &PlacementOptions::default());
        assert!(report.optimized.inter_node_bytes < report.uniform.inter_node_bytes);
        let profiles = plan.layer_profiles(&t, 2);
        let uniform_profiles = PlacementPlan::uniform(2, 8, 8).layer_profiles(&t, 2);
        assert!(profiles[1].inter_frac < uniform_profiles[1].inter_frac);
    }

    #[test]
    fn evaluate_counts_zero_devices_safely() {
        let t = ExpertTraffic::new(1, 4, 64);
        let p = PlacementPlan::uniform(1, 4, 2);
        let c = evaluate_placement(&p, &t, 8, 1.0);
        assert_eq!(c.inter_node_bytes, 0);
        assert_eq!(c.load_factor, 1.0);
    }
}
