//! Facade crate for the Lancet reproduction workspace.
//!
//! Re-exports every sub-crate under a single name so the examples and
//! integration tests can `use lancet_repro::…`. See the individual crates
//! for documentation:
//!
//! * [`ir`] — training-graph IR, dependency analysis, autodiff
//! * [`core`] — the Lancet compiler passes (dW scheduling, partitioning)
//! * [`cost`] — op profiler and communication cost model
//! * [`sim`] — discrete-event cluster simulator
//! * [`moe`] — MoE data plane (gating, irregular all-to-all)
//! * [`exec`] — numerical multi-device executor
//! * [`models`] — GPT-2 MoE benchmark models
//! * [`baselines`] — DeepSpeed/Tutel/RAF-style baseline schedules
//! * [`serve`] — concurrent inference-serving runtime (plan cache,
//!   micro-batching, backpressure)
//! * [`decode`] — autoregressive decode serving (KV cache, continuous
//!   batching, token streaming)
//! * [`store`] — mmap-friendly on-disk model format (zero-copy weight
//!   loading, prepacked GEMM panels)
//! * [`fleet`] — multi-replica serving front-end (consistent routing,
//!   work stealing, crash fail-over)
//! * [`tensor`] — dense tensor math

pub use lancet_baselines as baselines;
pub use lancet_core as core;
pub use lancet_cost as cost;
pub use lancet_decode as decode;
pub use lancet_exec as exec;
pub use lancet_ir as ir;
pub use lancet_models as models;
pub use lancet_moe as moe;
pub use lancet_fleet as fleet;
pub use lancet_serve as serve;
pub use lancet_sim as sim;
pub use lancet_store as store;
pub use lancet_tensor as tensor;
