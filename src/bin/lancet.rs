//! `lancet` — command-line front end for the Lancet reproduction.
//!
//! ```text
//! lancet optimize   --model s --cluster v100 --gpus 16 --gate switch [--trace t.json]
//! lancet compare    --model l --cluster a100 --gpus 32 --gate bpr
//! lancet serve-bench [--requests 64] [--rate 40] [--quick]
//! lancet chaos-bench [--seed N] [--quick]
//! lancet placement-bench [--seed N] [--gpus 16] [--experts 32] [--quick]
//! lancet decode-bench [--requests 32] [--rate 200] [--inflight 8] [--quick]
//! lancet tune-gemm [--samples 3] [--quick]
//! lancet pack-model [--model tiny] [--gpus 1] [--out results/model-tiny.lancet]
//! lancet fleet-bench [--replicas 4] [--requests 96] [--floor 10] [--quick]
//! lancet overlap-bench [--quick]
//! ```
//!
//! `optimize` runs the Lancet passes on one configuration and reports the
//! predicted and simulated iteration time (optionally dumping the IR and
//! a Chrome trace). `compare` runs every system (DeepSpeed / Tutel / RAF /
//! Lancet) on the same configuration. `serve-bench` drives the
//! `lancet-serve` runtime with a synthetic open-loop request trace and
//! reports serving throughput, latency percentiles, and plan-cache
//! effectiveness against a cold optimize-per-request baseline.
//! `chaos-bench` is the fault-injection conformance gate: it replays a
//! seeded fault schedule through the simulator and the serving runtime
//! and fails unless reports are bit-identical across replays, fault
//! counters reproduce, and no admitted request loses its reply.
//! `placement-bench` collects a skewed routing histogram, runs the
//! expert-placement search, and proves the win floor: the optimized
//! placement must move no more inter-node bytes than uniform, beat it
//! strictly in simulated step time, and the serving runtime's affinity
//! dispatch must land every single-worker request on its preferred
//! worker. The full run writes `results/BENCH_placement.json`.
//! `decode-bench` replays a deterministic open-loop generation trace
//! through the `lancet-decode` runtime twice — continuous batching vs
//! the windowed baseline — and fails unless continuous wins on mean
//! time-to-first-token with zero lost tokens; the full run sweeps the
//! in-flight cap and writes `results/BENCH_decode.json`.
//! `tune-gemm` searches GEMM cache blockings (`MC/KC/NC`) per weight
//! shape and `m` class on the detected ISA and writes the table to
//! `results/TUNE_gemm.json`; runtimes opt in via `LANCET_GEMM_TUNE`.
//! Blocking never changes computed bits, only traversal, so a tuned
//! table is purely a performance knob.
//! `pack-model` writes a model's canonical weights and prepacked GEMM
//! panels to a `lancet-store` file that runtimes load zero-copy (mmap).
//! `fleet-bench` drives closed bursts through 1→N replica fleets and
//! fails unless throughput scales (quick gate: 4 replicas ≥ 2.5× one)
//! and a mid-burst replica crash loses zero admitted requests; the full
//! run writes `results/BENCH_fleet.json` including cold-start timings
//! (store-mapped vs generated registration, separate from first-request
//! latency).
//! `overlap-bench` sweeps tile counts over the model zoo, comparing the
//! tile-granular schedule (per-tile all-to-alls + expert GEMMs from
//! `TileSchedule`) against the partition-level schedule in simulated
//! step time, plus the simulator's tile-interleave mode applied to the
//! partition-level graph. It fails unless `tiles = 1` reproduces the
//! partition-level program exactly and at least one tile count on one
//! model strictly beats partition level; the full run writes
//! `results/BENCH_overlap.json`.

use lancet_repro::baselines::{run_system, System};
use lancet_repro::core::{Lancet, LancetOptions};
use lancet_repro::cost::{ClusterKind, ClusterSpec, CommModel, ComputeModel};
use lancet_repro::ir::{summarize, to_text, GateKind};
use lancet_repro::models::{build_forward, GptMoeConfig};
use lancet_repro::sim::{to_chrome_trace, SimConfig, Simulator};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
usage: lancet <optimize|compare|serve-bench|chaos-bench|placement-bench|decode-bench|tune-gemm|pack-model|fleet-bench|overlap-bench> [options]

pack-model options:
  --model <s|l|mixtral|tiny>  model to pack (default: tiny)
  --gpus <N>                device count to canonicalize for (default: 1)
  --out <FILE>              store path (default: results/model-<name>.lancet)
  --seed <N>                weight seed (default: the serving default)

fleet-bench options:
  --replicas <N>            largest fleet size swept (default: 4)
  --requests <N>            burst size per fleet size (default: 96; quick: 48)
  --floor <MS>              per-batch service floor, emulating a fixed-latency
                            device on small hosts (default: 10)
  --quick                   scaling + crash gates only, no artifact (verify.sh)

overlap-bench options:
  --quick                   conformance + win floor on a small zoo, no artifact
                            (used by verify.sh); the full run sweeps tile
                            counts {1,2,4,8} over four sim-sized paper models
                            and writes results/BENCH_overlap.json

tune-gemm options:
  --samples <N>             timed runs per candidate blocking (default: 3)
  --quick                   small candidate grid, no artifact written

placement-bench options:
  --seed <N>                histogram seed (default: LANCET_PLACEMENT_SEED, then 0x91ACE)
  --gpus <N>                device count for the placement search (default: 16)
  --experts <N>             experts per MoE layer (default: 32)
  --layers <N>              MoE layer count in the histogram (default: 4)
  --tokens <N>              tokens routed per layer (default: 8192; quick: 2048)
  --quick                   assert the win floor only; skip the JSON artifact

serve-bench options:
  --requests <N>            open-loop trace length (default: 64; quick: 24)
  --rate <HZ>               mean request arrival rate (default: 40; quick: 200)
  --max-batch <N>           micro-batcher bucket cap (default: 4)
  --window <MS>             batching window in ms (default: 2)
  --quick                   seconds-bounded smoke run (used by verify.sh)

chaos-bench options:
  --seed <N>                fault seed (default: LANCET_CHAOS_SEED, then 0xC4A05)
  --requests <N>            serve-leg request count (default: 32; quick: 12)
  --quick                   seconds-bounded conformance run (used by verify.sh)

decode-bench options:
  --requests <N>            decode trace length (default: 32; quick: 16)
  --rate <HZ>               mean arrival rate in req/s (default: 200)
  --inflight <N>            max concurrently decoding sequences (default: 8)
  --quick                   TTFT floor + zero-loss gate only (used by verify.sh)

options:
  --model <s|l|mixtral|tiny>  benchmark model (default: s)
  --cluster <a100|v100>     simulated cluster (default: v100)
  --gpus <N>                GPU count, multiple of 8 preferred (default: 16)
  --gate <switch|bpr|top2|random|hash>   gating algorithm (default: switch)
  --batch <N>               per-GPU batch size (default: paper value)
  --layers <N>              override layer count
  --no-dw                   disable the dW scheduling pass
  --no-partition            disable the operator partition pass
  --fsdp                    shard large weights FSDP/ZeRO-3 style
  --recompute               checkpoint activations per transformer block
  --hierarchical            use the hierarchical (node-aggregated) all-to-all
  --gantt                   print an ASCII timeline of the optimized run
  --trace <file.json>       write a Chrome trace of the optimized run
  --dump-ir <file.txt>      write the optimized IR as text
";

fn parse_args() -> Result<(String, HashMap<String, String>), String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(|| "missing command".to_string())?;
    let mut opts = HashMap::new();
    let flags = [
        "--no-dw",
        "--no-partition",
        "--fsdp",
        "--recompute",
        "--hierarchical",
        "--gantt",
        "--quick",
    ];
    let mut iter = args.peekable();
    while let Some(a) = iter.next() {
        if flags.contains(&a.as_str()) {
            opts.insert(a.trim_start_matches("--").to_string(), "true".into());
        } else if let Some(key) = a.strip_prefix("--") {
            let v = iter.next().ok_or_else(|| format!("missing value for --{key}"))?;
            opts.insert(key.to_string(), v);
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    Ok((cmd, opts))
}

fn build_config(opts: &HashMap<String, String>) -> Result<(GptMoeConfig, ClusterKind), String> {
    let cluster = match opts.get("cluster").map(String::as_str).unwrap_or("v100") {
        "a100" => ClusterKind::A100,
        "v100" => ClusterKind::V100,
        other => return Err(format!("unknown cluster `{other}`")),
    };
    let gate = match opts.get("gate").map(String::as_str).unwrap_or("switch") {
        "switch" => GateKind::Switch,
        "bpr" => GateKind::BatchPrioritized,
        "top2" => GateKind::TopK { k: 2 },
        "random" => GateKind::Random,
        "hash" => GateKind::Hash,
        other => return Err(format!("unknown gate `{other}`")),
    };
    let gpus: usize = opts
        .get("gpus")
        .map(|v| v.parse().map_err(|_| format!("bad --gpus `{v}`")))
        .transpose()?
        .unwrap_or(16);
    let mut cfg = match opts.get("model").map(String::as_str).unwrap_or("s") {
        "s" => GptMoeConfig::gpt2_s_moe(gpus, gate)
            .with_batch(if cluster == ClusterKind::A100 { 24 } else { 16 }),
        "l" => GptMoeConfig::gpt2_l_moe(gpus, gate)
            .with_batch(if cluster == ClusterKind::A100 { 48 } else { 8 }),
        "mixtral" => GptMoeConfig::mixtral_moe(gpus).with_batch(8),
        "tiny" => GptMoeConfig::tiny(gpus, gate),
        other => return Err(format!("unknown model `{other}`")),
    };
    if let Some(b) = opts.get("batch") {
        cfg = cfg.with_batch(b.parse().map_err(|_| format!("bad --batch `{b}`"))?);
    }
    if let Some(l) = opts.get("layers") {
        cfg = cfg.with_layers(l.parse().map_err(|_| format!("bad --layers `{l}`"))?);
    }
    if opts.contains_key("fsdp") {
        cfg = cfg.with_fsdp(true);
    }
    Ok((cfg, cluster))
}

fn cmd_optimize(opts: &HashMap<String, String>) -> Result<(), String> {
    let (cfg, cluster) = build_config(opts)?;
    let spec = ClusterSpec::of(cluster, cfg.gpus.div_ceil(8).max(1));
    let options = LancetOptions {
        disable_dw_schedule: opts.contains_key("no-dw"),
        disable_partition: opts.contains_key("no-partition"),
        ..Default::default()
    };
    println!(
        "optimizing {} ({} layers, hidden {}, {} experts, batch {}/GPU, {} gate) for {} × {}…",
        cfg.name, cfg.layers, cfg.hidden, cfg.experts(), cfg.batch, cfg.gate, cfg.gpus, cluster
    );
    let lancet = Lancet::new(spec.clone(), cfg.gpus, options);
    let fwd = build_forward(&cfg).map_err(|e| e.to_string())?.graph;
    let mut outcome = lancet.optimize(fwd).map_err(|e| e.to_string())?;
    if opts.contains_key("recompute") {
        use lancet_repro::core::recompute_segments;
        use lancet_repro::models::block_boundaries;
        let segments = block_boundaries(&outcome.graph);
        let report =
            recompute_segments(&mut outcome.graph, &segments).map_err(|e| e.to_string())?;
        println!(
            "recomputation: {} segments, {} forward instructions duplicated",
            report.segments, report.recomputed_instrs
        );
        // The prediction must reflect the post-recompute graph.
        outcome.predicted_time = lancet
            .estimator()
            .estimate(&outcome.graph)
            .map_err(|e| e.to_string())?
            .total;
    }
    if outcome.prefetch.moved > 0 {
        println!("prefetch pass: {} all-gathers hoisted", outcome.prefetch.moved);
    }

    if let Some(p) = &outcome.partition {
        println!(
            "partition pass: {} range(s), {} P(i,n,k) evaluations, forward {:.1} → {:.1} ms (estimated)",
            p.ranges.len(),
            p.evaluations,
            p.unpartitioned_forward_time * 1e3,
            p.estimated_forward_time * 1e3
        );
    }
    if let Some(d) = &outcome.dw {
        println!(
            "dW schedule pass: {} dWs moved behind {} all-to-alls ({:.0}% of a2a time covered)",
            d.assigned,
            d.alltoalls,
            d.overlap_fraction() * 100.0
        );
    }
    println!("optimized graph: {}", summarize(&outcome.graph));
    println!("optimization took {:?}", outcome.optimization_time);

    let sim = Simulator::new(
        ComputeModel::new(spec.device.clone()),
        CommModel::new(spec),
        SimConfig {
            hierarchical_a2a: opts.contains_key("hierarchical"),
            ..SimConfig::new(cfg.gpus)
        },
    );
    let report = sim.simulate(&outcome.graph);
    println!(
        "simulated iteration: {:.1} ms (predicted {:.1} ms, error {:.1}%)",
        report.iteration_time * 1e3,
        outcome.predicted_time * 1e3,
        (outcome.predicted_time - report.iteration_time).abs() / report.iteration_time * 100.0
    );
    println!(
        "communication: {:.1} ms busy, {:.1} ms exposed ({:.0}% hidden){}",
        report.comm_busy * 1e3,
        report.exposed_comm() * 1e3,
        report.overlap_ratio() * 100.0,
        if report.oom { "  [OOM!]" } else { "" }
    );

    if opts.contains_key("gantt") {
        println!();
        print!("{}", lancet_repro::sim::render_gantt(&report, 72));
    }
    if let Some(path) = opts.get("trace") {
        std::fs::write(path, to_chrome_trace(&report)).map_err(|e| e.to_string())?;
        println!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = opts.get("dump-ir") {
        std::fs::write(path, to_text(&outcome.graph)).map_err(|e| e.to_string())?;
        println!("wrote IR text to {path}");
    }
    Ok(())
}

fn cmd_compare(opts: &HashMap<String, String>) -> Result<(), String> {
    let (cfg, cluster) = build_config(opts)?;
    println!(
        "comparing systems on {} ({} gate), {} × {}:\n",
        cfg.name, cfg.gate, cfg.gpus, cluster
    );
    println!("{:<12} {:>12} {:>16} {:>12}", "system", "iter (ms)", "exposed comm", "overlap");
    let mut best_baseline = f64::INFINITY;
    let mut lancet_time = None;
    for system in System::headline() {
        let out = run_system(system, &cfg, cluster).map_err(|e| e.to_string())?;
        let r = &out.report;
        let iter = if r.oom { "OOM".to_string() } else { format!("{:.1}", r.iteration_time * 1e3) };
        println!(
            "{:<12} {:>12} {:>14.1}ms {:>11.0}%",
            system.name(),
            iter,
            r.exposed_comm() * 1e3,
            r.overlap_ratio() * 100.0
        );
        if !r.oom {
            if system == System::Lancet {
                lancet_time = Some(r.iteration_time);
            } else {
                best_baseline = best_baseline.min(r.iteration_time);
            }
        }
    }
    if let Some(l) = lancet_time {
        println!("\nLancet speedup vs best baseline: {:.2}x", best_baseline / l);
    }
    Ok(())
}

/// The serving-scaled GPT2-S-MoE: the paper model's hidden/FFN/head
/// geometry with serving-sized sequence, vocabulary, and depth so the
/// CPU executor answers requests in milliseconds instead of minutes.
fn serving_scaled_gpt2s(quick: bool) -> GptMoeConfig {
    let cfg = GptMoeConfig::gpt2_s_moe(1, GateKind::Switch);
    if quick {
        cfg.with_layers(4).with_seq(8).with_vocab(128)
    } else {
        cfg.with_layers(4).with_seq(8).with_vocab(256)
    }
}

fn cmd_tune_gemm(opts: &HashMap<String, String>) -> Result<(), String> {
    use lancet_repro::tensor::gemm::detected_isa;
    use lancet_repro::tensor::tune::{tune_gpt2s_moe, TuneOptions, GPT2S_MOE_SHAPES};

    let quick = opts.contains_key("quick");
    let samples = opts
        .get("samples")
        .map(|v| v.parse::<usize>().map_err(|_| format!("bad --samples `{v}`")))
        .transpose()?
        .unwrap_or(3);
    println!(
        "tune-gemm: searching MC/KC/NC blockings for {} GPT2-S-MoE weight shapes on `{}`{}",
        GPT2S_MOE_SHAPES.len(),
        detected_isa(),
        if quick { " (quick grid)" } else { "" }
    );
    let table = tune_gpt2s_moe(TuneOptions { samples, quick, ..TuneOptions::default() }, |e| {
        println!(
            "  {:>8} m={:<3} k={:<4} n={:<4} -> mc={:<3} kc={:<3} nc={:<4}  {:>6.0} us (default {:.0} us, {:.2}x)",
            e.m_class.name(),
            e.m_class.representative_m(),
            e.k,
            e.n,
            e.spec.mc,
            e.spec.kc,
            e.spec.nc,
            e.tuned_ns as f64 / 1e3,
            e.default_ns as f64 / 1e3,
            e.default_ns as f64 / e.tuned_ns.max(1) as f64
        );
    });
    if quick {
        println!("\nquick run: table not written (rerun without --quick for the artifact)");
        return Ok(());
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/TUNE_gemm.json");
    std::fs::write(path, table.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    println!("\nwrote {} entries to {path}", table.len());
    println!("enable with LANCET_GEMM_TUNE=1 (or a path to the table)");
    Ok(())
}

fn cmd_serve_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    use lancet_repro::serve::{
        canonical_weights, open_loop_trace, replay_open_loop, Plan, ServeConfig, ServeRuntime,
    };
    use std::time::{Duration, Instant};

    let quick = opts.contains_key("quick");
    let parse = |key: &str, default: f64| -> Result<f64, String> {
        opts.get(key)
            .map(|v| v.parse::<f64>().map_err(|_| format!("bad --{key} `{v}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let requests = parse("requests", if quick { 24.0 } else { 64.0 })? as usize;
    let rate = parse("rate", if quick { 200.0 } else { 40.0 })?;
    let max_batch = parse("max-batch", 4.0)? as usize;
    let window = Duration::from_secs_f64(parse("window", 2.0)? / 1e3);
    let cluster = ClusterKind::A100;

    let cfg = serving_scaled_gpt2s(quick);
    println!(
        "serve-bench: {} (layers {}, seq {}, vocab {}), {} requests at {rate:.0} req/s, \
         max batch {max_batch}, window {:?}",
        cfg.name, cfg.layers, cfg.seq, cfg.vocab, requests, window
    );
    let trace = open_loop_trace(requests, rate, cfg.seq, cfg.vocab, 0xbead);

    // Cold baseline: what a runtime without a plan cache would pay per
    // request — a fresh optimizer (empty partition memo), plan build,
    // then one batch-of-one execution.
    let config = ServeConfig { cluster, max_batch, batch_window: window, ..ServeConfig::default() };
    let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
    let canonical = canonical_weights(&normalized, config.seed).map_err(|e| e.to_string())?;
    let solo_ids = lancet_repro::tensor::Tensor::from_vec(
        vec![1, cfg.seq],
        trace[0].ids.clone(),
    )
    .map_err(|e| e.to_string())?;
    let cold_samples = if quick { 2 } else { 4 };
    let mut cold_ms = Vec::new();
    for _ in 0..cold_samples {
        let started = Instant::now();
        let lancet = Lancet::new(ClusterSpec::of(cluster, 1), cfg.gpus, LancetOptions::default());
        let plan =
            Plan::build(&lancet, &normalized, 1, &canonical).map_err(|e| e.to_string())?;
        plan.execute(&solo_ids).map_err(|e| e.to_string())?;
        cold_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let cold_mean = cold_ms.iter().sum::<f64>() / cold_ms.len() as f64;
    println!("cold optimize-per-request: {cold_mean:.1} ms/request (n={cold_samples})");

    let runtime = ServeRuntime::start(config);
    runtime.register_model(cfg.clone()).map_err(|e| e.to_string())?;

    // Warm every power-of-two bucket the batcher can form, so the
    // steady-state measurement sees only cache hits.
    let mut bucket = 1;
    while bucket <= max_batch.next_power_of_two() {
        let tickets: Result<Vec<_>, _> =
            (0..bucket).map(|i| runtime.submit(&cfg.name, trace[i % requests].ids.clone())).collect();
        for t in tickets.map_err(|e| e.to_string())? {
            t.wait().map_err(|e| e.to_string())?;
        }
        bucket *= 2;
    }

    // Steady state: a closed burst through the warm cache measures the
    // per-request service cost with batching, no arrival idle time.
    let burst = if quick { 16 } else { 48 };
    let started = Instant::now();
    let tickets: Result<Vec<_>, _> =
        (0..burst).map(|i| runtime.submit(&cfg.name, trace[i % requests].ids.clone())).collect();
    for t in tickets.map_err(|e| e.to_string())? {
        t.wait().map_err(|e| e.to_string())?;
    }
    let steady_ms = started.elapsed().as_secs_f64() * 1e3 / burst as f64;
    let speedup = cold_mean / steady_ms;
    println!("steady-state (warm cache): {steady_ms:.1} ms/request ({speedup:.1}x vs cold)");

    // Open-loop replay: the serving-quality numbers.
    let replay = replay_open_loop(&runtime, &cfg.name, &trace);
    let stats = runtime.stats();
    println!(
        "\nopen-loop replay: {} ok, {} rejected, {} shed, {} failed in {:.2} s",
        replay.ok,
        replay.rejected,
        replay.shed,
        replay.failed,
        replay.wall.as_secs_f64()
    );
    println!(
        "latency p50/p95/p99: {:.1} / {:.1} / {:.1} ms   throughput {:.1} req/s   mean batch {:.2}",
        stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.throughput_rps, stats.mean_batch
    );
    println!(
        "plan cache: {} hits, {} misses ({:.0}% hit rate), {} evictions, {} resident, \
         {:.1} KiB prepacked weights",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache_hit_rate() * 100.0,
        stats.cache.evictions,
        stats.cache.len,
        stats.cache.packed_bytes as f64 / 1024.0
    );
    runtime.shutdown();

    // Smoke contract (verify.sh runs this in --quick mode): the cache
    // must be doing its job and no response may be lost.
    let lost = replay.lost(requests);
    let outstanding = runtime.stats().outstanding();
    if stats.cache_hit_rate() <= 0.0 {
        return Err("serve-bench: plan-cache hit rate is zero".into());
    }
    if lost != 0 || outstanding != 0 {
        return Err(format!(
            "serve-bench: lost responses (replay lost {lost}, outstanding {outstanding})"
        ));
    }
    println!("\nsmoke contract: cache hit rate > 0, zero lost responses — OK");
    Ok(())
}

/// The counters a seeded chaos replay must reproduce exactly (wall-clock
/// quantities like latency percentiles are excluded by design).
fn chaos_ledger(stats: &lancet_repro::serve::ServeStats) -> [u64; 8] {
    [
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.timed_out,
        stats.injected_faults,
        stats.retried,
        stats.degraded,
        stats.worker_panics,
    ]
}

fn cmd_chaos_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    use lancet_repro::serve::{FaultSpec, ServeConfig, ServeRuntime};
    use lancet_repro::sim::FaultPlan;
    use std::time::Duration;

    let quick = opts.contains_key("quick");
    let seed: u64 = match opts.get("seed") {
        Some(v) => v.parse().map_err(|_| format!("bad --seed `{v}`"))?,
        None => std::env::var("LANCET_CHAOS_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0xC4A05),
    };
    let requests: usize = opts
        .get("requests")
        .map(|v| v.parse().map_err(|_| format!("bad --requests `{v}`")))
        .transpose()?
        .unwrap_or(if quick { 12 } else { 32 });
    println!("chaos-bench: seed {seed:#x}, {requests} serve requests{}", if quick { " (quick)" } else { "" });

    // ── Sim leg: a seeded fault schedule replayed through the simulator
    // must produce bit-identical reports, and faults must only slow the
    // iteration down.
    let (cfg, cluster) = build_config(&HashMap::from([(
        "model".to_string(),
        if quick { "tiny".to_string() } else { "s".to_string() },
    )]))?;
    let spec = ClusterSpec::of(cluster, cfg.gpus.div_ceil(8).max(1));
    let graph = {
        let mut g = build_forward(&cfg).map_err(|e| e.to_string())?.graph;
        lancet_repro::ir::build_backward(&mut g, &Default::default()).map_err(|e| e.to_string())?;
        g
    };
    let simulate = |plan: lancet_repro::sim::FaultPlan| {
        let sim = Simulator::new(
            ComputeModel::new(spec.device.clone()),
            CommModel::new(spec.clone()),
            SimConfig::new(cfg.gpus).with_fault_plan(plan),
        );
        sim.simulate(&graph)
    };
    let healthy = simulate(FaultPlan::none());
    let fault_plan = FaultPlan::generate(seed, cfg.gpus, healthy.iteration_time);
    let a = simulate(fault_plan.clone());
    let b = simulate(fault_plan);
    if a != b {
        return Err("chaos-bench: sim replay is not bit-identical".into());
    }
    if a.iteration_time < healthy.iteration_time - 1e-12 {
        return Err("chaos-bench: faults sped the simulated iteration up".into());
    }
    println!(
        "sim: healthy {:.1} ms → faulted {:.1} ms ({} compute slowed, {} comm degraded, \
         {} drops, +{:.1} ms injected) — replay bit-identical",
        healthy.iteration_time * 1e3,
        a.iteration_time * 1e3,
        a.faults.compute_slowed,
        a.faults.comm_degraded,
        a.faults.link_drops,
        a.faults.injected_delay * 1e3
    );

    // ── Serve leg 1: deterministic replay. A single-worker, batch-of-one
    // sequential drive draws every fault in one fixed order, so the fault
    // ledger must reproduce exactly.
    let tiny = GptMoeConfig::tiny(1, GateKind::Switch);
    let ids_for = |i: usize| -> Vec<f32> {
        (0..tiny.seq).map(|s| ((i * 3 + s * 5 + 1) % tiny.vocab) as f32).collect()
    };
    let drive = |seed: u64| -> Result<lancet_repro::serve::ServeStats, String> {
        let runtime = ServeRuntime::start(ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            exec_workers: 1,
            fault: Some(FaultSpec::chaos(seed)),
            ..ServeConfig::default()
        });
        runtime.register_model(tiny.clone()).map_err(|e| e.to_string())?;
        for i in 0..requests {
            // Chaos replies may be typed errors; losing one is the bug.
            let _ = runtime.submit_blocking(&tiny.name, ids_for(i));
        }
        runtime.shutdown();
        Ok(runtime.stats())
    };
    let first = drive(seed)?;
    let second = drive(seed)?;
    if chaos_ledger(&first) != chaos_ledger(&second) {
        return Err(format!(
            "chaos-bench: serve replay diverged ({:?} vs {:?})",
            chaos_ledger(&first),
            chaos_ledger(&second)
        ));
    }
    if first.outstanding() != 0 {
        return Err(format!("chaos-bench: {} requests lost in replay drive", first.outstanding()));
    }
    println!(
        "serve replay: {} completed, {} failed, {} injected faults, {} retries, \
         {} panics isolated — ledgers identical",
        first.completed, first.failed, first.injected_faults, first.retried, first.worker_panics
    );

    // ── Serve leg 2: concurrent chaos. Multiple workers, real batching,
    // every fault class armed — every admitted ticket must still resolve.
    let runtime = ServeRuntime::start(ServeConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        request_timeout: Duration::from_millis(500),
        fault: Some(FaultSpec::chaos(seed)),
        ..ServeConfig::default()
    });
    runtime.register_model(tiny.clone()).map_err(|e| e.to_string())?;
    let tickets: Vec<_> = (0..requests)
        .map(|i| runtime.submit(&tiny.name, ids_for(i)))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let mut answered = 0usize;
    for t in tickets {
        let _ = t.wait(); // ok or typed error — both count as answered
        answered += 1;
    }
    runtime.shutdown();
    let stats = runtime.stats();
    if answered != requests || stats.outstanding() != 0 {
        return Err(format!(
            "chaos-bench: lost tickets under concurrent chaos ({answered}/{requests} answered, \
             {} outstanding)",
            stats.outstanding()
        ));
    }
    println!(
        "serve chaos: {requests}/{requests} tickets answered ({} ok, {} failed, {} timed out, \
         {} degraded batches), zero lost",
        stats.completed, stats.failed, stats.timed_out, stats.degraded
    );
    println!("\nchaos conformance: replay bit-identical, ledgers reproduce, zero lost — OK");
    Ok(())
}

fn cmd_placement_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    use lancet_repro::cost::{optimize_placement, PlacementOptions, PlacementPlan};
    use lancet_repro::moe::{RoutingHistogram, Workload};
    use lancet_repro::serve::{ServeConfig, ServeRuntime};
    use std::time::Duration;

    let quick = opts.contains_key("quick");
    let seed: u64 = match opts.get("seed") {
        Some(v) => v.parse().map_err(|_| format!("bad --seed `{v}`"))?,
        None => std::env::var("LANCET_PLACEMENT_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0x91ACE),
    };
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        opts.get(key)
            .map(|v| v.parse::<usize>().map_err(|_| format!("bad --{key} `{v}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let devices = parse_usize("gpus", 16)?;
    let experts = parse_usize("experts", 32)?;
    let layers = parse_usize("layers", 4)?;
    let tokens = parse_usize("tokens", if quick { 2048 } else { 8192 })?;
    let mut options = PlacementOptions::default();
    if let Ok(v) = std::env::var("LANCET_PLACEMENT_SWEEPS") {
        if let Ok(s) = v.trim().parse() {
            options.sweeps = s;
        }
    }
    let spec = ClusterSpec::of(ClusterKind::V100, devices.div_ceil(8).max(1));
    let gpn = spec.net.gpus_per_node.min(devices).max(1);
    println!(
        "placement-bench: seed {seed:#x}, {layers} MoE layers × {experts} experts on \
         {devices} GPUs ({gpn}/node), Zipf(1.2) routing over {tokens} tokens{}",
        if quick { " (quick)" } else { "" }
    );

    // ── Histogram: route a skewed workload through the real gate and
    // collect per-expert loads + inter-layer transitions.
    let bytes_per_token = 768 * 4; // GPT2-S hidden, fp32 activations
    let hist = RoutingHistogram::collect(
        Workload::Zipf { exponent: 1.2 },
        layers,
        experts,
        tokens,
        bytes_per_token,
        seed,
    )
    .map_err(|e| e.to_string())?;
    let traffic = hist.into_traffic();

    // ── Cost leg: uniform vs optimized placement under the analytical
    // objective (inter-node all-to-all bytes + overload penalty).
    let uniform_plan = PlacementPlan::uniform(layers, experts, devices);
    let (opt_plan, report) = optimize_placement(&traffic, devices, gpn, &options);
    let mib = |b: u64| b as f64 / (1u64 << 20) as f64;
    println!("\n  placement   inter-node MiB   load factor   objective(MiB)");
    for (name, c) in [("uniform", report.uniform), ("optimized", report.optimized)] {
        println!(
            "  {name:<11} {:>14.2} {:>13.3} {:>16.2}",
            mib(c.inter_node_bytes),
            c.load_factor,
            c.objective / (1u64 << 20) as f64
        );
    }
    println!(
        "  search: {} swaps accepted over {} evaluations",
        report.moves, report.evaluations
    );
    if report.optimized.inter_node_bytes > report.uniform.inter_node_bytes {
        return Err("placement-bench: optimized placement moved MORE bytes across nodes".into());
    }
    if report.optimized.objective > report.uniform.objective {
        return Err("placement-bench: optimized objective worse than uniform".into());
    }

    // ── Sim leg: replay the same training schedule under both placements;
    // the optimized plan must not be slower, and on this skewed workload
    // it must be strictly faster.
    let (cfg, cluster) = build_config(&HashMap::from([
        ("model".to_string(), if quick { "tiny".to_string() } else { "s".to_string() }),
        ("gpus".to_string(), devices.to_string()),
    ]))?;
    let sim_spec = ClusterSpec::of(cluster, devices.div_ceil(8).max(1));
    let graph = build_forward(&cfg).map_err(|e| e.to_string())?.graph;
    let simulate = |plan: &PlacementPlan| {
        let sim = Simulator::new(
            ComputeModel::new(sim_spec.device.clone()),
            CommModel::new(sim_spec.clone()),
            SimConfig::new(devices).with_placement(plan.clone(), traffic.clone()),
        );
        sim.simulate(&graph).iteration_time
    };
    let sim_uniform = simulate(&uniform_plan);
    let sim_optimized = simulate(&opt_plan);
    let sim_replay = simulate(&opt_plan);
    println!(
        "\nsim ({}): uniform {:.2} ms → optimized {:.2} ms ({:.2}% faster)",
        cfg.name,
        sim_uniform * 1e3,
        sim_optimized * 1e3,
        (1.0 - sim_optimized / sim_uniform) * 100.0
    );
    if sim_optimized >= sim_uniform {
        return Err(format!(
            "placement-bench: optimized placement did not beat uniform in simulation \
             ({:.3} ms vs {:.3} ms)",
            sim_optimized * 1e3,
            sim_uniform * 1e3
        ));
    }
    if sim_replay != sim_optimized {
        return Err("placement-bench: simulated placement replay is not bit-identical".into());
    }

    // ── Serve leg: affinity dispatch. One worker makes every preference
    // trivially satisfiable, so the hit counter must equal the request
    // count; a second run with more workers checks hit+miss accounting.
    let tiny = GptMoeConfig::tiny(1, GateKind::Switch);
    let requests = if quick { 8 } else { 16 };
    let drive = |workers: usize| -> Result<lancet_repro::serve::ServeStats, String> {
        let runtime = ServeRuntime::start(ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            exec_workers: workers,
            affinity: true,
            ..ServeConfig::default()
        });
        runtime.register_model(tiny.clone()).map_err(|e| e.to_string())?;
        for i in 0..requests {
            let ids: Vec<f32> =
                (0..tiny.seq).map(|s| ((i * 3 + s * 5 + 1) % tiny.vocab) as f32).collect();
            runtime.submit_blocking(&tiny.name, ids).map_err(|e| e.to_string())?;
        }
        runtime.shutdown();
        Ok(runtime.stats())
    };
    let solo = drive(1)?;
    let duo = drive(2)?;
    println!(
        "serve affinity: 1 worker {} hits / {} misses; 2 workers {} hits / {} misses",
        solo.placement_hits, solo.placement_misses, duo.placement_hits, duo.placement_misses
    );
    if solo.placement_hits != requests as u64 || solo.placement_misses != 0 {
        return Err(format!(
            "placement-bench: single-worker affinity must hit every request \
             ({} hits, {} misses of {requests})",
            solo.placement_hits, solo.placement_misses
        ));
    }
    if duo.placement_hits + duo.placement_misses != requests as u64 {
        return Err("placement-bench: affinity hit+miss accounting lost requests".into());
    }

    println!(
        "\nwin floor: optimized ≤ uniform inter-node bytes, strict sim win, \
         affinity hits {} of {requests} — OK",
        solo.placement_hits
    );

    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_placement.json");
        let out = format!(
            "{{\n  \"bench\": \"placement\",\n  \"workload\": {{\"kind\": \"zipf\", \
             \"exponent\": 1.2, \"layers\": {layers}, \"experts\": {experts}, \
             \"tokens\": {tokens}, \"devices\": {devices}, \"gpus_per_node\": {gpn}, \
             \"seed\": {seed}}},\n  \
             \"cost\": {{\n    \"uniform\": {{\"inter_node_mib\": {:.2}, \"load_factor\": {:.3}, \
             \"objective_mib\": {:.2}}},\n    \"optimized\": {{\"inter_node_mib\": {:.2}, \
             \"load_factor\": {:.3}, \"objective_mib\": {:.2}}},\n    \"moves\": {}, \
             \"evaluations\": {}\n  }},\n  \
             \"sim\": {{\"model\": \"{}\", \"uniform_ms\": {:.3}, \"optimized_ms\": {:.3}, \
             \"win_pct\": {:.2}}},\n  \
             \"serve\": {{\"requests\": {requests}, \"solo_hits\": {}, \"solo_misses\": {}, \
             \"duo_hits\": {}, \"duo_misses\": {}}}\n}}\n",
            mib(report.uniform.inter_node_bytes),
            report.uniform.load_factor,
            report.uniform.objective / (1u64 << 20) as f64,
            mib(report.optimized.inter_node_bytes),
            report.optimized.load_factor,
            report.optimized.objective / (1u64 << 20) as f64,
            report.moves,
            report.evaluations,
            cfg.name,
            sim_uniform * 1e3,
            sim_optimized * 1e3,
            (1.0 - sim_optimized / sim_uniform) * 100.0,
            solo.placement_hits,
            solo.placement_misses,
            duo.placement_hits,
            duo.placement_misses,
        );
        std::fs::write(path, out).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_decode_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    use lancet_repro::decode::{
        decode_trace, replay_decode, BatchMode, DecodeConfig, DecodeReplayReport, DecodeRuntime,
    };
    use lancet_repro::serve::ServeStats;

    let quick = opts.contains_key("quick");
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        opts.get(key)
            .map(|v| v.parse::<usize>().map_err(|_| format!("bad --{key} `{v}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let requests = parse_usize("requests", if quick { 16 } else { 32 })?;
    let inflight = parse_usize("inflight", 8)?;
    let rate: f64 = match opts.get("rate") {
        Some(v) => v.parse().map_err(|_| format!("bad --rate `{v}`"))?,
        None => 200.0,
    };
    let seed: u64 = 0xdec0de;

    // A decode-sized model: deep enough that a step costs real time (so
    // windowed head-of-line blocking is visible), small enough that the
    // quick gate stays in CI budget.
    let mut cfg = GptMoeConfig::tiny(1, GateKind::Switch);
    cfg.name = "GPT2-XS-MoE-decode".into();
    cfg.layers = 4;
    cfg.hidden = 64;
    cfg.heads = 4;
    cfg.ffn = 128;
    cfg.vocab = 128;
    cfg.batch = 1;
    cfg.seq = 32;

    // Near-simultaneous arrivals with varied generation lengths: under
    // windowed batching the whole second wave waits out the slowest
    // first-wave sequence before its prefill, so continuous batching's
    // step-boundary joins should win mean TTFT by construction.
    let trace = decode_trace(requests, rate, (4, 12), (8, 24), cfg.vocab, seed);
    let expected_tokens: usize = trace.iter().map(|r| r.max_new).sum();
    println!(
        "decode-bench: {requests} requests @ {rate:.0}/s (open loop), prompts 4–12, \
         gen 8–24, model {} ({} layers, hidden {}), in-flight cap {inflight}{}",
        cfg.name,
        cfg.layers,
        cfg.hidden,
        if quick { " (quick)" } else { "" }
    );

    let run_leg = |mode: BatchMode, cap: usize| -> Result<(DecodeReplayReport, ServeStats), String> {
        let runtime = DecodeRuntime::start(DecodeConfig {
            mode,
            max_inflight: cap,
            ..DecodeConfig::default()
        });
        runtime.register_model(cfg.clone()).map_err(|e| e.to_string())?;
        let report = replay_decode(&runtime, &cfg.name, &trace);
        runtime.shutdown();
        Ok((report, runtime.stats()))
    };

    let (cont, cont_stats) = run_leg(BatchMode::Continuous, inflight)?;
    let (win, win_stats) = run_leg(BatchMode::Windowed, inflight)?;

    println!("\n  policy       TTFT mean/p95 (ms)   ITL mean (ms)   tok/s   lost");
    for (name, r) in [("continuous", &cont), ("windowed", &win)] {
        println!(
            "  {name:<12} {:>8.2} / {:<8.2} {:>13.3} {:>7.0} {:>6}",
            r.mean_ttft_ms, r.p95_ttft_ms, r.mean_itl_ms, r.tokens_per_sec, r.token_gaps
        );
    }

    // ── Zero-loss floor: every admitted stream delivers its full,
    // gapless token sequence on both legs.
    for (name, r, stats) in
        [("continuous", &cont, &cont_stats), ("windowed", &win, &win_stats)]
    {
        if r.rejected != 0 || r.failed != 0 {
            return Err(format!(
                "decode-bench: {name} leg dropped requests ({} rejected, {} failed)",
                r.rejected, r.failed
            ));
        }
        if r.token_gaps != 0 {
            return Err(format!(
                "decode-bench: {name} leg violated the streaming contract ({} token gaps)",
                r.token_gaps
            ));
        }
        if r.tokens != expected_tokens {
            return Err(format!(
                "decode-bench: {name} leg lost tokens ({} delivered, {expected_tokens} expected)",
                r.tokens
            ));
        }
        if stats.outstanding() != 0 {
            return Err(format!(
                "decode-bench: {name} leg left {} streams unanswered",
                stats.outstanding()
            ));
        }
    }

    // ── Win floor: continuous batching must beat the windowed baseline
    // on mean TTFT — joining at step boundaries instead of waiting out
    // the running batch is the whole point of the scheduler.
    if cont.mean_ttft_ms >= win.mean_ttft_ms {
        return Err(format!(
            "decode-bench: continuous batching did not improve mean TTFT \
             ({:.2} ms vs windowed {:.2} ms)",
            cont.mean_ttft_ms, win.mean_ttft_ms
        ));
    }
    println!(
        "\nwin floor: continuous TTFT {:.2} ms < windowed {:.2} ms ({:.1}% better), \
         {expected_tokens}/{expected_tokens} tokens, zero gaps — OK",
        cont.mean_ttft_ms,
        win.mean_ttft_ms,
        (1.0 - cont.mean_ttft_ms / win.mean_ttft_ms) * 100.0
    );

    if !quick {
        // ── In-flight sweep: throughput and latency as the continuous
        // scheduler admits more concurrent sequences.
        println!("\n  in-flight   tok/s   TTFT p50/p95 (ms)   ITL p50/p95 (ms)");
        let mut sweep = Vec::new();
        for cap in [1usize, 2, 4, 8] {
            let (r, s) = run_leg(BatchMode::Continuous, cap)?;
            println!(
                "  {cap:>9} {:>7.0} {:>8.2} / {:<8.2} {:>7.3} / {:<7.3}",
                r.tokens_per_sec, s.ttft_p50_ms, s.ttft_p95_ms, s.itl_p50_ms, s.itl_p95_ms
            );
            sweep.push(format!(
                "    {{\"inflight\": {cap}, \"tokens_per_sec\": {:.1}, \
                 \"ttft_p50_ms\": {:.3}, \"ttft_p95_ms\": {:.3}, \
                 \"itl_p50_ms\": {:.3}, \"itl_p95_ms\": {:.3}}}",
                r.tokens_per_sec, s.ttft_p50_ms, s.ttft_p95_ms, s.itl_p50_ms, s.itl_p95_ms
            ));
        }
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_decode.json");
        let out = format!(
            "{{\n  \"bench\": \"decode\",\n  \"workload\": {{\"requests\": {requests}, \
             \"rate_hz\": {rate:.1}, \"prompt_len\": [4, 12], \"max_new\": [8, 24], \
             \"tokens\": {expected_tokens}, \"seed\": {seed}}},\n  \
             \"model\": {{\"name\": \"{}\", \"layers\": {}, \"hidden\": {}, \"heads\": {}, \
             \"experts\": {}, \"vocab\": {}}},\n  \
             \"comparison\": {{\n    \"inflight\": {inflight},\n    \
             \"continuous\": {{\"mean_ttft_ms\": {:.3}, \"p95_ttft_ms\": {:.3}, \
             \"mean_itl_ms\": {:.3}, \"tokens_per_sec\": {:.1}}},\n    \
             \"windowed\": {{\"mean_ttft_ms\": {:.3}, \"p95_ttft_ms\": {:.3}, \
             \"mean_itl_ms\": {:.3}, \"tokens_per_sec\": {:.1}}},\n    \
             \"ttft_win_pct\": {:.2}\n  }},\n  \"sweep\": [\n{}\n  ]\n}}\n",
            cfg.name,
            cfg.layers,
            cfg.hidden,
            cfg.heads,
            cfg.experts(),
            cfg.vocab,
            cont.mean_ttft_ms,
            cont.p95_ttft_ms,
            cont.mean_itl_ms,
            cont.tokens_per_sec,
            win.mean_ttft_ms,
            win.p95_ttft_ms,
            win.mean_itl_ms,
            win.tokens_per_sec,
            (1.0 - cont.mean_ttft_ms / win.mean_ttft_ms) * 100.0,
            sweep.join(",\n"),
        );
        std::fs::write(path, out).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Builds the prepacked GEMM panels that `write_store` serializes next to
/// the canonical weights: bind every weight, run the executor's prepack
/// pass, and harvest the per-device panels keyed by weight name.
fn store_pack_panels(
    cfg: &GptMoeConfig,
    canonical: &lancet_repro::serve::CanonicalWeights,
) -> Result<lancet_repro::store::StoredPacks, String> {
    use lancet_repro::exec::Bindings;

    let model = build_forward(cfg).map_err(|e| format!("model graph: {e}"))?;
    let graph = model.graph;
    let devices = canonical.len();
    let mut bindings = Bindings::new(devices);
    for id in graph.weights() {
        let def = graph.tensor(id);
        for (d, map) in canonical.iter().enumerate() {
            let value = map
                .get(&def.name)
                .ok_or_else(|| format!("canonical weights missing `{}`", def.name))?;
            bindings.set(d, id, value.clone());
        }
    }
    bindings.prepack_weights(&graph);

    let mut packs: lancet_repro::store::StoredPacks = vec![HashMap::new(); devices];
    for id in graph.weights() {
        let name = &graph.tensor(id).name;
        for (d, map) in packs.iter_mut().enumerate() {
            if let Some(p) = bindings.packed(d, id) {
                map.insert(name.clone(), std::sync::Arc::new(p.clone()));
            }
        }
    }
    Ok(packs)
}

fn cmd_pack_model(opts: &HashMap<String, String>) -> Result<(), String> {
    use lancet_repro::serve::{canonical_weights, ServeConfig};
    use lancet_repro::store::{open_store_with, write_store, OpenOptions};
    use std::time::Instant;

    // pack-model defaults to the smallest single-device model; serving
    // hosts are the consumers, not the 16-GPU training sweeps.
    let mut opts = opts.clone();
    opts.entry("model".into()).or_insert_with(|| "tiny".into());
    opts.entry("gpus".into()).or_insert_with(|| "1".into());
    let model_key = opts.get("model").cloned().unwrap_or_else(|| "tiny".into());
    let (cfg, _cluster) = build_config(&opts)?;
    let seed: u64 = match opts.get("seed") {
        Some(v) => v.parse().map_err(|_| format!("bad --seed `{v}`"))?,
        None => ServeConfig::default().seed,
    };
    let out = opts.get("out").cloned().unwrap_or_else(|| {
        format!("{}/results/model-{model_key}.lancet", env!("CARGO_MANIFEST_DIR"))
    });

    // The store must hold exactly what register_model would generate, so
    // normalize the capacity factor the same way the runtime does.
    let cfg = cfg.clone().with_capacity_factor(cfg.experts() as f64);
    println!(
        "pack-model: {} ({} layers, hidden {}, {} experts) × {} device(s), seed {seed:#x}",
        cfg.name,
        cfg.layers,
        cfg.hidden,
        cfg.experts(),
        cfg.gpus
    );

    let t = Instant::now();
    let canonical = canonical_weights(&cfg, seed).map_err(|e| e.to_string())?;
    let gen_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let packs = store_pack_panels(&cfg, &canonical)?;
    let pack_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let summary = write_store(std::path::Path::new(&out), &cfg.name, &canonical, &packs)
        .map_err(|e| format!("write {out}: {e}"))?;
    let write_ms = t.elapsed().as_secs_f64() * 1e3;

    // Reopen with the full data checksum on and prove the round trip is
    // bit-identical before calling the file good.
    let t = Instant::now();
    let stored = open_store_with(
        std::path::Path::new(&out),
        OpenOptions { mmap: None, verify_data: Some(true) },
    )
    .map_err(|e| format!("verify {out}: {e}"))?;
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    for (d, map) in canonical.iter().enumerate() {
        for (name, tensor) in map {
            let got = stored.weights[d]
                .get(name)
                .ok_or_else(|| format!("round trip lost `{name}` on device {d}"))?;
            if got.data() != tensor.data() {
                return Err(format!("round trip corrupted `{name}` on device {d}"));
            }
        }
    }

    println!(
        "  weights   {:>8.1} ms to generate, {} tensors ({} deduped to shared payloads)",
        gen_ms, summary.tensors, summary.deduped
    );
    println!("  panels    {:>8.1} ms to prepack, {} pack entries", pack_ms, summary.packs);
    println!(
        "  store     {:>8.1} ms to write, {:.2} MiB, full-checksum reopen {:.1} ms ({})",
        write_ms,
        summary.bytes as f64 / (1024.0 * 1024.0),
        open_ms,
        if stored.mapped { "mapped" } else { "heap fallback" }
    );
    println!("wrote {out}");
    Ok(())
}

fn cmd_fleet_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    use lancet_repro::fleet::{Fleet, FleetConfig};
    use lancet_repro::serve::{canonical_weights, ServeConfig, ServeRuntime};
    use lancet_repro::store::{open_store, write_store};
    use std::time::{Duration, Instant};

    let quick = opts.contains_key("quick");
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        opts.get(key)
            .map(|v| v.parse::<usize>().map_err(|_| format!("bad --{key} `{v}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let replicas_max = parse_usize("replicas", 4)?.max(1);
    let requests = parse_usize("requests", if quick { 64 } else { 96 })?.max(replicas_max);
    let floor_ms = parse_usize("floor", 10)? as u64;

    // One exec worker per replica and a fixed per-batch service floor
    // emulate N fixed-latency devices, so the scaling table measures the
    // fleet's routing/stealing, not host-CPU contention.
    let serve = ServeConfig {
        max_batch: 2,
        batch_window: Duration::from_millis(1),
        exec_workers: 1,
        service_floor: Duration::from_millis(floor_ms),
        ..ServeConfig::default()
    };
    let cfg = {
        let mut c = GptMoeConfig::tiny(1, GateKind::Switch);
        c.name = "GPT2-XS-MoE-fleet".into();
        c
    };
    println!(
        "fleet-bench: {requests} requests, 1→{replicas_max} replicas, {floor_ms} ms service \
         floor, model {}{}",
        cfg.name,
        if quick { " (quick)" } else { "" }
    );

    // ── Cold start: pack the model once, then time the store path
    // against regenerating weights, keeping first-request latency (plan
    // build + execute) separate from load time.
    let normalized = cfg.clone().with_capacity_factor(cfg.experts() as f64);
    let canonical = canonical_weights(&normalized, serve.seed).map_err(|e| e.to_string())?;
    let packs = store_pack_panels(&normalized, &canonical)?;
    let store_path =
        std::env::temp_dir().join(format!("lancet-fleet-bench-{}.lancet", std::process::id()));
    let t = Instant::now();
    let summary = write_store(&store_path, &normalized.name, &canonical, &packs)
        .map_err(|e| e.to_string())?;
    let pack_write_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let stored = open_store(&store_path).map_err(|e| e.to_string())?;
    let open_ms = t.elapsed().as_secs_f64() * 1e3;

    let prompt = |salt: usize| -> Vec<f32> {
        (0..cfg.seq).map(|t| ((t + salt) % cfg.vocab) as f32).collect()
    };

    let rt_stored = ServeRuntime::start(serve.clone());
    let t = Instant::now();
    rt_stored
        .register_model_with_weights(cfg.clone(), stored.weights.clone(), Some(stored.packs.clone()))
        .map_err(|e| e.to_string())?;
    let register_stored_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let stored_reply = rt_stored.submit_blocking(&cfg.name, prompt(0)).map_err(|e| e.to_string())?;
    let first_request_ms = t.elapsed().as_secs_f64() * 1e3;
    rt_stored.shutdown();

    let rt_gen = ServeRuntime::start(serve.clone());
    let t = Instant::now();
    rt_gen.register_model(cfg.clone()).map_err(|e| e.to_string())?;
    let register_generated_ms = t.elapsed().as_secs_f64() * 1e3;
    let gen_reply = rt_gen.submit_blocking(&cfg.name, prompt(0)).map_err(|e| e.to_string())?;
    rt_gen.shutdown();
    if stored_reply != gen_reply {
        return Err("fleet-bench: store-loaded weights diverged from generated weights".into());
    }

    println!(
        "\n  cold start: store {:.2} MiB written in {pack_write_ms:.1} ms, opened in \
         {open_ms:.2} ms ({}), register stored {register_stored_ms:.1} ms vs generated \
         {register_generated_ms:.1} ms, first request {first_request_ms:.1} ms",
        summary.bytes as f64 / (1024.0 * 1024.0),
        if stored.mapped { "mapped" } else { "heap fallback" }
    );

    // ── Scaling sweep: the same closed burst through 1..=N replicas.
    println!("\n  replicas   wall (ms)   req/s   speedup   p50 (ms)   p99 (ms)   stolen");
    let mut rows: Vec<String> = Vec::new();
    let mut base_rps = 0.0f64;
    let mut gate_speedup = 0.0f64;
    for n in 1..=replicas_max {
        let fleet = Fleet::start(FleetConfig {
            replicas: n,
            serve: serve.clone(),
            steal_threshold: 1,
        });
        fleet
            .register_model_with_weights(cfg.clone(), &stored.weights, Some(&stored.packs))
            .map_err(|e| e.to_string())?;
        // Pre-build every bucket's plan on every replica, then run one
        // settling wave, so the timed burst measures steady-state
        // service rather than plan compilation.
        fleet.warm(&cfg.name).map_err(|e| e.to_string())?;
        let warm: Vec<_> = (0..(2 * n))
            .map(|i| fleet.submit(&cfg.name, prompt(i)))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        for t in warm {
            t.wait().map_err(|e| e.to_string())?;
        }

        let t = Instant::now();
        let tickets: Vec<_> = (0..requests)
            .map(|i| fleet.submit(&cfg.name, prompt(i)))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        for ticket in tickets {
            ticket.wait().map_err(|e| e.to_string())?;
        }
        let wall = t.elapsed().as_secs_f64();
        let stats = fleet.stats();
        fleet.shutdown();
        if stats.merged.outstanding() != 0 {
            return Err(format!(
                "fleet-bench: {n}-replica leg left {} requests unanswered",
                stats.merged.outstanding()
            ));
        }

        let rps = requests as f64 / wall;
        if n == 1 {
            base_rps = rps;
        }
        let speedup = rps / base_rps;
        if n == replicas_max.min(4) {
            gate_speedup = speedup;
        }
        println!(
            "  {n:>8} {:>11.1} {:>7.1} {:>8.2}x {:>10.2} {:>10.2} {:>8}",
            wall * 1e3,
            rps,
            speedup,
            stats.merged.p50_ms,
            stats.merged.p99_ms,
            stats.stolen
        );
        rows.push(format!(
            "    {{\"replicas\": {n}, \"requests\": {requests}, \"wall_ms\": {:.1}, \
             \"throughput_rps\": {:.1}, \"speedup\": {:.3}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"stolen\": {}}}",
            wall * 1e3,
            rps,
            speedup,
            stats.merged.p50_ms,
            stats.merged.p99_ms,
            stats.stolen
        ));
    }

    // ── Scaling floor: with device time emulated, 4 replicas must buy
    // well over half their nominal capacity.
    if replicas_max >= 4 && gate_speedup < 2.5 {
        return Err(format!(
            "fleet-bench: 4 replicas reached only {gate_speedup:.2}x a single replica \
             (floor 2.5x)"
        ));
    }

    // ── Chaos leg: kill the routed replica with its queue full; every
    // admitted ticket must still answer via re-routing.
    let chaos_replicas = replicas_max.clamp(2, 3);
    let chaos_requests = 24usize;
    let fleet = Fleet::start(FleetConfig {
        replicas: chaos_replicas,
        serve: ServeConfig { service_floor: Duration::from_millis(5), ..serve.clone() },
        steal_threshold: usize::MAX,
    });
    fleet
        .register_model_with_weights(cfg.clone(), &stored.weights, Some(&stored.packs))
        .map_err(|e| e.to_string())?;
    let home = fleet.route_of(&cfg.name).map_err(|e| e.to_string())?;
    let tickets: Vec<_> = (0..chaos_requests)
        .map(|i| fleet.submit(&cfg.name, prompt(i)))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    fleet.crash(home);
    let mut lost = 0usize;
    for ticket in tickets {
        if ticket.wait().is_err() {
            lost += 1;
        }
    }
    let chaos = fleet.stats();
    fleet.shutdown();
    if lost != 0 || chaos.merged.outstanding() != 0 {
        return Err(format!(
            "fleet-bench: chaos leg lost {lost} tickets ({} unanswered)",
            chaos.merged.outstanding()
        ));
    }
    println!(
        "\n  chaos: crashed replica {home}/{chaos_replicas} with {} queued tickets drained, \
         {} re-routed, 0 lost",
        chaos.merged.crashed, chaos.rerouted
    );
    println!(
        "\nscaling floor: {} replicas at {gate_speedup:.2}x ≥ 2.5x, chaos 0 lost — OK",
        replicas_max.min(4)
    );
    let _ = std::fs::remove_file(&store_path);

    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_fleet.json");
        let out = format!(
            "{{\n  \"bench\": \"fleet\",\n  \"workload\": {{\"requests\": {requests}, \
             \"service_floor_ms\": {floor_ms}, \"max_batch\": {}, \"seed\": {}}},\n  \
             \"model\": {{\"name\": \"{}\", \"layers\": {}, \"hidden\": {}, \
             \"experts\": {}, \"vocab\": {}}},\n  \
             \"cold_start\": {{\"store_bytes\": {}, \"store_tensors\": {}, \
             \"store_packs\": {}, \"deduped\": {}, \"pack_write_ms\": {pack_write_ms:.2}, \
             \"open_ms\": {open_ms:.3}, \"mapped\": {}, \
             \"register_stored_ms\": {register_stored_ms:.2}, \
             \"register_generated_ms\": {register_generated_ms:.2}, \
             \"first_request_ms\": {first_request_ms:.2}}},\n  \
             \"scaling\": [\n{}\n  ],\n  \
             \"chaos\": {{\"replicas\": {chaos_replicas}, \"requests\": {chaos_requests}, \
             \"crashed\": {}, \"rerouted\": {}, \"lost\": {lost}}}\n}}\n",
            serve.max_batch,
            serve.seed,
            cfg.name,
            cfg.layers,
            cfg.hidden,
            cfg.experts(),
            cfg.vocab,
            summary.bytes,
            summary.tensors,
            summary.packs,
            summary.deduped,
            stored.mapped,
            rows.join(",\n"),
            chaos.merged.crashed,
            chaos.rerouted,
        );
        std::fs::write(path, out).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_overlap_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    use lancet_repro::core::TileSchedule;

    let quick = opts.contains_key("quick");
    let tile_counts: &[usize] = &[1, 2, 4, 8];
    // Sim-sized paper models across both interconnect regimes. Tile
    // overlap only pays where a segment\'s expert GEMMs can hide its
    // all-to-all: single-node NVLink clusters with large per-GPU batches
    // (compute-bound segments). The 2-node NIC configs and mixtral are
    // kept deliberately — they are comm-bound, so every tile count loses
    // to partition level there and the sweep records the regime boundary.
    // The quick gate keeps the two headline winners so verify.sh stays
    // seconds-bounded.
    let zoo: Vec<(&str, ClusterKind, GptMoeConfig)> = vec![
        ("gpt2-s-moe/top2/a100-1n", ClusterKind::A100,
         GptMoeConfig::gpt2_s_moe(8, GateKind::TopK { k: 2 }).with_layers(4).with_batch(32)),
        ("gpt2-s-moe/switch/v100-1n", ClusterKind::V100,
         GptMoeConfig::gpt2_s_moe(8, GateKind::Switch).with_layers(4).with_batch(64)),
        ("gpt2-s-moe/switch/a100-1n", ClusterKind::A100,
         GptMoeConfig::gpt2_s_moe(8, GateKind::Switch).with_layers(4).with_batch(64)),
        ("gpt2-l-moe/switch/a100-1n", ClusterKind::A100,
         GptMoeConfig::gpt2_l_moe(8, GateKind::Switch).with_layers(4).with_batch(32)),
        ("mixtral-moe/a100-1n", ClusterKind::A100,
         GptMoeConfig::mixtral_moe(8).with_layers(4).with_batch(16)),
        ("gpt2-s-moe/switch/v100-2n", ClusterKind::V100,
         GptMoeConfig::gpt2_s_moe(16, GateKind::Switch).with_layers(4).with_batch(8)),
    ];
    let zoo: Vec<_> = if quick { zoo.into_iter().take(2).collect() } else { zoo };

    println!(
        "overlap-bench: tile-granular vs partition-level schedules, tiles {tile_counts:?}{}\n",
        if quick { " (quick)" } else { "" }
    );
    println!(
        "{:<20} {:>6} {:>12} {:>6} {:>12} {:>12} {:>9}",
        "model", "tiles", "partition", "segs", "tiled (ms)", "interleave", "speedup"
    );

    let mut rows = Vec::new();
    let mut best_speedup = 0.0f64;
    let mut best_config = String::new();
    for (name, kind, cfg) in &zoo {
        let spec = ClusterSpec::of(*kind, cfg.gpus.div_ceil(8).max(1));
        // Partition-level reference: the tile scheduler pinned off so an
        // exported LANCET_TILE_COUNT cannot skew the baseline column.
        let base_opts = LancetOptions { tile: None, ..Default::default() };
        let lancet = Lancet::new(spec.clone(), cfg.gpus, base_opts);
        let fwd = build_forward(cfg).map_err(|e| e.to_string())?.graph;
        let base = lancet.optimize_forward(fwd.clone()).map_err(|e| e.to_string())?;
        let sim = |tiles: usize| {
            Simulator::new(
                ComputeModel::new(spec.device.clone()),
                CommModel::new(spec.clone()),
                SimConfig::new(cfg.gpus).with_tiles(tiles),
            )
        };
        let base_ms = sim(1).simulate(&base.graph).iteration_time * 1e3;
        let mut tile_rows = Vec::new();
        for &k in tile_counts {
            let topts = LancetOptions { tile: Some(TileSchedule::new(k)), ..Default::default() };
            let out = Lancet::new(spec.clone(), cfg.gpus, topts)
                .optimize_forward(fwd.clone())
                .map_err(|e| e.to_string())?;
            let report = out.tile.unwrap_or_default();
            if k == 1 {
                // Conformance: tiles=1 must be the partition-level program,
                // op for op.
                let (a, b) = (to_text(&base.graph), to_text(&out.graph));
                if a != b {
                    return Err(format!("{name}: tiles=1 diverged from the partition-level schedule"));
                }
            }
            // Tile-granular schedule simulated on the stock two-stream
            // engine: overlap comes from the per-tile graph dependencies.
            let tiled_ms = sim(1).simulate(&out.graph).iteration_time * 1e3;
            // The simulator's own tile-interleave mode applied to the
            // *partition-level* graph — the modeled counterpart.
            let interleave_ms = sim(k).simulate(&base.graph).iteration_time * 1e3;
            let speedup = base_ms / tiled_ms;
            println!(
                "{:<20} {:>6} {:>10.2}ms {:>6} {:>10.2}ms {:>10.2}ms {:>8.3}x",
                name, k, base_ms, report.segments, tiled_ms, interleave_ms, speedup
            );
            if k > 1 && speedup > best_speedup {
                best_speedup = speedup;
                best_config = format!("{name}@tiles={k}");
            }
            tile_rows.push(format!(
                "      {{\"tiles\": {k}, \"segments\": {}, \"skipped\": {}, \"ops_added\": {}, \
                 \"tiled_ms\": {tiled_ms:.4}, \"interleave_ms\": {interleave_ms:.4}, \
                 \"speedup\": {speedup:.4}}}",
                report.segments, report.skipped, report.ops_added
            ));
        }
        rows.push(format!(
            "    {{\"model\": \"{name}\", \"cluster\": \"{kind}\", \"gpus\": {}, \
             \"partition_ms\": {base_ms:.4}, \"sweep\": [\n{}\n    ]}}",
            cfg.gpus,
            tile_rows.join(",\n")
        ));
        println!();
    }

    if best_speedup <= 1.0 {
        return Err(format!(
            "overlap-bench: no tile count beat the partition-level schedule \
             (best {best_speedup:.3}x) — the overlap floor is broken"
        ));
    }
    println!("best tile-level win: {best_speedup:.3}x on {best_config} — OK");

    if !quick {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_overlap.json");
        let out = format!(
            "{{\n  \"bench\": \"overlap\",\n  \
             \"tile_counts\": [1, 2, 4, 8],\n  \
             \"best_speedup\": {best_speedup:.4},\n  \"best_config\": \"{best_config}\",\n  \
             \"models\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write(path, out).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok((cmd, opts)) => {
            let result = match cmd.as_str() {
                "optimize" => cmd_optimize(&opts),
                "compare" => cmd_compare(&opts),
                "serve-bench" => cmd_serve_bench(&opts),
                "tune-gemm" => cmd_tune_gemm(&opts),
                "chaos-bench" => cmd_chaos_bench(&opts),
                "placement-bench" => cmd_placement_bench(&opts),
                "decode-bench" => cmd_decode_bench(&opts),
                "pack-model" => cmd_pack_model(&opts),
                "fleet-bench" => cmd_fleet_bench(&opts),
                "overlap-bench" => cmd_overlap_bench(&opts),
                "help" | "--help" | "-h" => {
                    print!("{USAGE}");
                    Ok(())
                }
                other => Err(format!("unknown command `{other}`")),
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
